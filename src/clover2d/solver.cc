#include "clover2d/solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace tdfe
{

namespace clover
{

namespace
{

/** Smallest admissible density / specific energy (vacuum guard). */
constexpr double fieldFloor = 1e-12;

/**
 * Rows per parallel chunk. Fixed (never derived from the thread
 * count) so the dt reduction's chunking — and therefore its result —
 * is identical for every pool size.
 */
constexpr std::size_t rowGrain = 4;

/** Cells per chunk for flat (whole-array) loops. */
constexpr std::size_t flatGrain = 4096;

/**
 * Run @p fn(j) for j in [j_begin, j_end) on the global pool. Rows
 * are the parallel unit everywhere in this solver: every kernel
 * writes only to its own row of the cell or node arrays.
 */
template <typename Fn>
void
forRows(int j_begin, int j_end, Fn &&fn)
{
    const std::size_t n =
        j_end > j_begin ? static_cast<std::size_t>(j_end - j_begin)
                        : 0;
    parallelForRange(n, rowGrain, [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r)
            fn(j_begin + static_cast<int>(r));
    });
}

} // namespace

CloverSolver2D::CloverSolver2D(const CloverConfig &config)
    : cfg(config), eos_(config.gamma)
{
    TDFE_ASSERT(cfg.nx > 0 && cfg.ny > 0,
                "grid extents must be positive");
    TDFE_ASSERT(cfg.dx > 0.0 && cfg.dy > 0.0,
                "cell widths must be positive");
    TDFE_ASSERT(cfg.cfl > 0.0 && cfg.cfl < 1.0,
                "CFL must be in (0, 1)");

    pcx = cfg.nx + 2 * ghosts;
    pcy = cfg.ny + 2 * ghosts;
    pnx = pcx + 1;
    pny = pcy + 1;

    const std::size_t nc = static_cast<std::size_t>(pcx) * pcy;
    const std::size_t nn = static_cast<std::size_t>(pnx) * pny;

    rho0_.assign(nc, cfg.rho0);
    rho1_.assign(nc, cfg.rho0);
    const double e_ambient = eos_.energy(cfg.rho0, cfg.p0);
    e0_.assign(nc, e_ambient);
    e1_.assign(nc, e_ambient);
    p_.assign(nc, cfg.p0);
    q_.assign(nc, 0.0);
    cs_.assign(nc, eos_.soundSpeed(cfg.rho0, cfg.p0));
    preVol.assign(nc, cfg.dx * cfg.dy);
    postVol.assign(nc, cfg.dx * cfg.dy);

    vx_.assign(nn, 0.0);
    vy_.assign(nn, 0.0);
    vxBar.assign(nn, 0.0);
    vyBar.assign(nn, 0.0);
    nodeMass0.assign(nn, 0.0);
    nodeMass1.assign(nn, 0.0);
    volFluxX.assign(nn, 0.0);
    volFluxY.assign(nn, 0.0);
    massFluxX.assign(nn, 0.0);
    massFluxY.assign(nn, 0.0);
    eFlux.assign(nn, 0.0);
}

std::size_t
CloverSolver2D::cid(int i, int j) const
{
    return static_cast<std::size_t>(j) * pcx +
           static_cast<std::size_t>(i);
}

std::size_t
CloverSolver2D::nid(int i, int j) const
{
    return static_cast<std::size_t>(j) * pnx +
           static_cast<std::size_t>(i);
}

void
CloverSolver2D::depositCornerEnergy(double energy)
{
    TDFE_ASSERT(energy > 0.0, "blast energy must be positive");
    const double cell_mass = cfg.rho0 * cfg.dx * cfg.dy;
    e0_[cid(ghosts, ghosts)] = energy / cell_mass;
    e1_[cid(ghosts, ghosts)] = energy / cell_mass;
}

double
CloverSolver2D::density(int i, int j) const
{
    return rho0_[cid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::energy(int i, int j) const
{
    return e0_[cid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::pressure(int i, int j) const
{
    const std::size_t c = cid(i + ghosts, j + ghosts);
    return eos_.pressure(rho0_[c], e0_[c]);
}

double
CloverSolver2D::xvel(int i, int j) const
{
    return vx_[nid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::yvel(int i, int j) const
{
    return vy_[nid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::speedAt(int i, int j) const
{
    const int gi = i + ghosts;
    const int gj = j + ghosts;
    const double u = 0.25 * (vx_[nid(gi, gj)] + vx_[nid(gi + 1, gj)] +
                             vx_[nid(gi, gj + 1)] +
                             vx_[nid(gi + 1, gj + 1)]);
    const double v = 0.25 * (vy_[nid(gi, gj)] + vy_[nid(gi + 1, gj)] +
                             vy_[nid(gi, gj + 1)] +
                             vy_[nid(gi + 1, gj + 1)]);
    return std::sqrt(u * u + v * v);
}

double
CloverSolver2D::totalMass() const
{
    double sum = 0.0;
    for (int j = ghosts; j < ghosts + cfg.ny; ++j) {
        const double *__restrict row = rho0_.data() + cid(0, j);
        for (int i = ghosts; i < ghosts + cfg.nx; ++i)
            sum += row[i];
    }
    return sum * cfg.dx * cfg.dy;
}

double
CloverSolver2D::totalEnergy() const
{
    double sum = 0.0;
    for (int j = 0; j < cfg.ny; ++j) {
        const int gj = j + ghosts;
        const double *__restrict rr = rho0_.data() + cid(0, gj);
        const double *__restrict er = e0_.data() + cid(0, gj);
        const double *__restrict vx0 = vx_.data() + nid(0, gj);
        const double *__restrict vx1 = vx_.data() + nid(0, gj + 1);
        const double *__restrict vy0 = vy_.data() + nid(0, gj);
        const double *__restrict vy1 = vy_.data() + nid(0, gj + 1);
        for (int i = 0; i < cfg.nx; ++i) {
            const int gi = i + ghosts;
            // Same corner-average order as speedAt().
            const double u = 0.25 * (vx0[gi] + vx0[gi + 1] +
                                     vx1[gi] + vx1[gi + 1]);
            const double v = 0.25 * (vy0[gi] + vy0[gi + 1] +
                                     vy1[gi] + vy1[gi + 1]);
            const double speed = std::sqrt(u * u + v * v);
            sum += rr[gi] * (er[gi] + 0.5 * speed * speed);
        }
    }
    return sum * cfg.dx * cfg.dy;
}

void
CloverSolver2D::idealGas()
{
    const std::size_t nc = rho0_.size();
    const double *rho = rho0_.data();
    const double *e = e0_.data();
    double *p = p_.data();
    double *cs = cs_.data();
    parallelForRange(nc, flatGrain,
                     [&](std::size_t b, std::size_t end) {
                         for (std::size_t c = b; c < end; ++c) {
                             p[c] = eos_.pressure(rho[c], e[c]);
                             cs[c] = eos_.soundSpeed(rho[c], p[c]);
                         }
                     });
}

namespace
{

/**
 * Mirror a ghost-padded cell field: reflective on the low edges
 * (blast symmetry planes), zero-gradient outflow on the high edges.
 */
void
haloFillCell(std::vector<double> &f, int pcx, int pcy, int nx, int ny,
             int g)
{
    // X direction, every row (ghost rows fixed by the y pass below).
    for (int j = 0; j < pcy; ++j) {
        double *row = f.data() + static_cast<std::size_t>(j) * pcx;
        for (int k = 0; k < g; ++k) {
            row[g - 1 - k] = row[g + k];
            row[g + nx + k] = row[g + nx - 1];
        }
    }
    // Y direction, whole rows at a time.
    for (int k = 0; k < g; ++k) {
        const std::size_t lo_dst =
            static_cast<std::size_t>(g - 1 - k) * pcx;
        const std::size_t lo_src = static_cast<std::size_t>(g + k) * pcx;
        const std::size_t hi_dst =
            static_cast<std::size_t>(g + ny + k) * pcx;
        const std::size_t hi_src =
            static_cast<std::size_t>(g + ny - 1) * pcx;
        for (int i = 0; i < pcx; ++i) {
            f[lo_dst + i] = f[lo_src + i];
            f[hi_dst + i] = f[hi_src + i];
        }
    }
}

} // namespace

void
CloverSolver2D::updateHalo()
{
    haloFillCell(rho0_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e0_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

void
CloverSolver2D::viscosity()
{
    forRows(ghosts, ghosts + cfg.ny, [&](int j) {
        // Flattened row bases: cells of row j, nodes of rows j/j+1.
        double *qr = q_.data() + cid(0, j);
        const double *rr = rho0_.data() + cid(0, j);
        const double *cr = cs_.data() + cid(0, j);
        const double *vx0 = vx_.data() + nid(0, j);
        const double *vx1 = vx_.data() + nid(0, j + 1);
        const double *vy0 = vy_.data() + nid(0, j);
        const double *vy1 = vy_.data() + nid(0, j + 1);
        for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
            // Velocity jumps across the cell (face-averaged).
            const double du = 0.5 * (vx0[i + 1] + vx1[i + 1] -
                                     vx0[i] - vx1[i]);
            const double dv = 0.5 * (vy1[i] + vy1[i + 1] -
                                     vy0[i] - vy0[i + 1]);
            const double jump = du + dv;
            if (jump < 0.0) {
                qr[i] = rr[i] *
                        (cfg.cvisc2 * jump * jump +
                         cfg.cvisc1 * cr[i] * std::fabs(jump));
            } else {
                qr[i] = 0.0;
            }
        }
    });
    haloFillCell(q_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

double
CloverSolver2D::calcDt()
{
    updateHalo();
    idealGas();
    viscosity();

    const double dt0 =
        lastDt > 0.0 ? lastDt * cfg.dtGrowth : cfg.dtInit;
    // Per-row CFL minima, combined by min: bitwise identical for any
    // chunking or thread count.
    const double dt = parallelReduce(
        static_cast<std::size_t>(cfg.ny), rowGrain, dt0,
        [&](std::size_t rb, std::size_t re) {
            double best = dt0;
            for (std::size_t r = rb; r < re; ++r) {
                const int j = ghosts + static_cast<int>(r);
                const double *cr = cs_.data() + cid(0, j);
                const double *qr = q_.data() + cid(0, j);
                const double *rr = rho0_.data() + cid(0, j);
                const double *vx0 = vx_.data() + nid(0, j);
                const double *vx1 = vx_.data() + nid(0, j + 1);
                const double *vy0 = vy_.data() + nid(0, j);
                const double *vy1 = vy_.data() + nid(0, j + 1);
                for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
                    const double cs2 =
                        cr[i] * cr[i] + 2.0 * qr[i] / rr[i];
                    const double cs_eff = std::sqrt(cs2);
                    const double u = 0.25 *
                        (std::fabs(vx0[i]) + std::fabs(vx0[i + 1]) +
                         std::fabs(vx1[i]) + std::fabs(vx1[i + 1]));
                    const double v = 0.25 *
                        (std::fabs(vy0[i]) + std::fabs(vy0[i + 1]) +
                         std::fabs(vy1[i]) + std::fabs(vy1[i + 1]));
                    const double dt_x = cfg.dx / (cs_eff + u + 1e-30);
                    const double dt_y = cfg.dy / (cs_eff + v + 1e-30);
                    best = std::min(
                        best, cfg.cfl * std::min(dt_x, dt_y));
                }
            }
            return best;
        },
        [](double a, double b) { return std::min(a, b); });
    TDFE_ASSERT(dt > 0.0 && std::isfinite(dt),
                "clover2d produced a non-positive timestep");
    return dt;
}

void
CloverSolver2D::applyVelocityBc()
{
    const int g = ghosts;
    const int inx = g + cfg.nx;
    const int iny = g + cfg.ny;

    // Low-x symmetry plane: no normal flow, mirrored ghosts. One
    // row-base pointer pair per node row instead of nid() per cell.
    for (int j = 0; j < pny; ++j) {
        double *__restrict vxr = vx_.data() + nid(0, j);
        double *__restrict vyr = vy_.data() + nid(0, j);
        vxr[g] = 0.0;
        for (int k = 1; k <= g; ++k) {
            vxr[g - k] = -vxr[g + k];
            vyr[g - k] = vyr[g + k];
        }
        for (int k = 1; k <= g; ++k) {
            vxr[inx + k] = vxr[inx];
            vyr[inx + k] = vyr[inx];
        }
    }
    // Low-y symmetry plane and high-y outflow: whole node rows at a
    // time (stride-1 copies between row pairs).
    {
        double *__restrict vy_wall = vy_.data() + nid(0, g);
        for (int i = 0; i < pnx; ++i)
            vy_wall[i] = 0.0;
    }
    for (int k = 1; k <= g; ++k) {
        double *__restrict vy_dst = vy_.data() + nid(0, g - k);
        double *__restrict vx_dst = vx_.data() + nid(0, g - k);
        const double *__restrict vy_src = vy_.data() + nid(0, g + k);
        const double *__restrict vx_src = vx_.data() + nid(0, g + k);
        for (int i = 0; i < pnx; ++i) {
            vy_dst[i] = -vy_src[i];
            vx_dst[i] = vx_src[i];
        }
    }
    for (int k = 1; k <= g; ++k) {
        double *__restrict vy_dst = vy_.data() + nid(0, iny + k);
        double *__restrict vx_dst = vx_.data() + nid(0, iny + k);
        const double *__restrict vy_src = vy_.data() + nid(0, iny);
        const double *__restrict vx_src = vx_.data() + nid(0, iny);
        for (int i = 0; i < pnx; ++i) {
            vy_dst[i] = vy_src[i];
            vx_dst[i] = vx_src[i];
        }
    }
}

void
CloverSolver2D::accelerate(double dt)
{
    // Time-centering: remember the pre-acceleration velocities, the
    // PdV/flux stage uses the average of old and new.
    vxBar = vx_;
    vyBar = vy_;

    const double inv_dx = 1.0 / cfg.dx;
    const double inv_dy = 1.0 / cfg.dy;
    forRows(ghosts, ghosts + cfg.ny + 1, [&](int j) {
        double *vxr = vx_.data() + nid(0, j);
        double *vyr = vy_.data() + nid(0, j);
        const double *rho_s = rho0_.data() + cid(0, j - 1);
        const double *rho_n = rho0_.data() + cid(0, j);
        const double *p_s = p_.data() + cid(0, j - 1);
        const double *p_n = p_.data() + cid(0, j);
        const double *q_s = q_.data() + cid(0, j - 1);
        const double *q_n = q_.data() + cid(0, j);
        for (int i = ghosts; i <= ghosts + cfg.nx; ++i) {
            const double pq_sw = p_s[i - 1] + q_s[i - 1];
            const double pq_se = p_s[i] + q_s[i];
            const double pq_nw = p_n[i - 1] + q_n[i - 1];
            const double pq_ne = p_n[i] + q_n[i];
            const double rho_node =
                0.25 * (rho_s[i - 1] + rho_s[i] + rho_n[i - 1] +
                        rho_n[i]);
            const double dpqdx =
                0.5 * ((pq_se + pq_ne) - (pq_sw + pq_nw)) * inv_dx;
            const double dpqdy =
                0.5 * ((pq_nw + pq_ne) - (pq_sw + pq_se)) * inv_dy;
            vxr[i] -= dt * dpqdx / rho_node;
            vyr[i] -= dt * dpqdy / rho_node;
        }
    });
    applyVelocityBc();

    const std::size_t nn = vx_.size();
    double *vxb = vxBar.data();
    double *vyb = vyBar.data();
    const double *vx = vx_.data();
    const double *vy = vy_.data();
    parallelForRange(nn, flatGrain,
                     [&](std::size_t b, std::size_t e) {
                         for (std::size_t n = b; n < e; ++n) {
                             vxb[n] = 0.5 * (vxb[n] + vx[n]);
                             vyb[n] = 0.5 * (vyb[n] + vy[n]);
                         }
                     });
}

void
CloverSolver2D::fluxCalc(double dt)
{
    // Face volume fluxes from time-centered node velocities; the
    // extended range (one ghost ring) also feeds the momentum remap.
    const double hdt_dy = 0.5 * dt * cfg.dy;
    const double hdt_dx = 0.5 * dt * cfg.dx;
    forRows(ghosts - 1, ghosts + cfg.ny + 1, [&](int j) {
        double *fx = volFluxX.data() + nid(0, j);
        const double *vb0 = vxBar.data() + nid(0, j);
        const double *vb1 = vxBar.data() + nid(0, j + 1);
        for (int i = ghosts - 1; i < ghosts + cfg.nx + 2; ++i)
            fx[i] = hdt_dy * (vb0[i] + vb1[i]);
    });
    forRows(ghosts - 1, ghosts + cfg.ny + 2, [&](int j) {
        double *fy = volFluxY.data() + nid(0, j);
        const double *vb = vyBar.data() + nid(0, j);
        for (int i = ghosts - 1; i < ghosts + cfg.nx + 1; ++i)
            fy[i] = hdt_dx * (vb[i] + vb[i + 1]);
    });
}

void
CloverSolver2D::pdv()
{
    const double vol = cfg.dx * cfg.dy;
    forRows(ghosts, ghosts + cfg.ny, [&](int j) {
        double *rho1 = rho1_.data() + cid(0, j);
        double *e1 = e1_.data() + cid(0, j);
        const double *rho0 = rho0_.data() + cid(0, j);
        const double *e0 = e0_.data() + cid(0, j);
        const double *pr = p_.data() + cid(0, j);
        const double *qr = q_.data() + cid(0, j);
        const double *fx = volFluxX.data() + nid(0, j);
        const double *fy0 = volFluxY.data() + nid(0, j);
        const double *fy1 = volFluxY.data() + nid(0, j + 1);
        for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
            const double total_flux =
                fx[i + 1] - fx[i] + fy1[i] - fy0[i];
            double vol_lagr = vol + total_flux;
            if (vol_lagr < 0.1 * vol) {
                TDFE_WARN("clover2d: clamped collapsing cell (",
                          i - ghosts, ", ", j - ghosts, ") at cycle ",
                          cycleCount);
                vol_lagr = 0.1 * vol;
            }
            rho1[i] = std::max(rho0[i] * vol / vol_lagr, fieldFloor);
            const double de =
                (pr[i] + qr[i]) * total_flux / (rho0[i] * vol);
            e1[i] = std::max(e0[i] - de, fieldFloor);
        }
    });
    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

void
CloverSolver2D::advectCellX()
{
    const double vol = cfg.dx * cfg.dy;
    const bool first_sweep = (cycleCount % 2) == 0;
    const int g = ghosts;

    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);

    // Lagrangian (pre) and post-sweep control volumes, one ghost
    // ring included so boundary node masses see consistent values.
    // The first sweep of a cycle starts from the fully-expanded
    // Lagrangian volume (both directions' fluxes); the second sweep
    // only has its own direction left to remap.
    forRows(g - 1, g + cfg.ny + 1, [&](int j) {
        double *pre = preVol.data() + cid(0, j);
        double *post = postVol.data() + cid(0, j);
        const double *fvx = volFluxX.data() + nid(0, j);
        const double *fvy0 = volFluxY.data() + nid(0, j);
        const double *fvy1 = volFluxY.data() + nid(0, j + 1);
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double fx = fvx[i + 1] - fvx[i];
            const double fy = fvy1[i] - fvy0[i];
            pre[i] = vol + fx + (first_sweep ? fy : 0.0);
            post[i] = pre[i] - fx;
        }
    });

    // Donor-cell mass and internal-energy fluxes, all from
    // pre-update values so the update loop below has no ordering
    // hazard.
    forRows(g - 1, g + cfg.ny + 1, [&](int j) {
        double *mfx = massFluxX.data() + nid(0, j);
        double *ef = eFlux.data() + nid(0, j);
        const double *fvx = volFluxX.data() + nid(0, j);
        const double *rho1 = rho1_.data() + cid(0, j);
        const double *e1 = e1_.data() + cid(0, j);
        for (int i = g - 1; i <= g + cfg.nx + 1; ++i) {
            const double vf = fvx[i];
            const int donor = vf > 0.0 ? i - 1 : i;
            mfx[i] = vf * rho1[donor];
            ef[i] = mfx[i] * e1[donor];
        }
    });

    // Node masses on the Lagrangian volumes, for the momentum remap.
    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *nm = nodeMass0.data() + nid(0, j);
        const double *rho_s = rho1_.data() + cid(0, j - 1);
        const double *rho_n = rho1_.data() + cid(0, j);
        const double *pre_s = preVol.data() + cid(0, j - 1);
        const double *pre_n = preVol.data() + cid(0, j);
        for (int i = g; i <= g + cfg.nx; ++i) {
            nm[i] = 0.25 * (rho_s[i - 1] * pre_s[i - 1] +
                            rho_s[i] * pre_s[i] +
                            rho_n[i - 1] * pre_n[i - 1] +
                            rho_n[i] * pre_n[i]);
        }
    });

    // Conservative remap of mass and internal energy.
    forRows(g - 1, g + cfg.ny + 1, [&](int j) {
        double *rho1 = rho1_.data() + cid(0, j);
        double *e1 = e1_.data() + cid(0, j);
        const double *pre = preVol.data() + cid(0, j);
        const double *post = postVol.data() + cid(0, j);
        const double *mfx = massFluxX.data() + nid(0, j);
        const double *ef = eFlux.data() + nid(0, j);
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double pre_mass = rho1[i] * pre[i];
            const double post_mass =
                pre_mass + mfx[i] - mfx[i + 1];
            const double post_energy =
                e1[i] * pre_mass + ef[i] - ef[i + 1];
            rho1[i] = std::max(post_mass / post[i], fieldFloor);
            e1[i] = std::max(
                post_energy / std::max(post_mass, fieldFloor),
                fieldFloor);
        }
    });
}

void
CloverSolver2D::advectMomX()
{
    const int g = ghosts;

    // Node masses after the cell remap.
    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *nm = nodeMass1.data() + nid(0, j);
        const double *rho_s = rho1_.data() + cid(0, j - 1);
        const double *rho_n = rho1_.data() + cid(0, j);
        const double *post_s = postVol.data() + cid(0, j - 1);
        const double *post_n = postVol.data() + cid(0, j);
        for (int i = g; i <= g + cfg.nx; ++i) {
            nm[i] = 0.25 * (rho_s[i - 1] * post_s[i - 1] +
                            rho_s[i] * post_s[i] +
                            rho_n[i - 1] * post_n[i - 1] +
                            rho_n[i] * post_n[i]);
        }
    });

    // Donor velocities come from a frozen copy of the node fields.
    vxBar = vx_;
    vyBar = vy_;

    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *vxr = vx_.data() + nid(0, j);
        double *vyr = vy_.data() + nid(0, j);
        const double *vbx = vxBar.data() + nid(0, j);
        const double *vby = vyBar.data() + nid(0, j);
        const double *nm0 = nodeMass0.data() + nid(0, j);
        const double *nm1 = nodeMass1.data() + nid(0, j);
        const double *mf_s = massFluxX.data() + nid(0, j - 1);
        const double *mf_n = massFluxX.data() + nid(0, j);
        // Node-control-volume mass flux across the face between
        // nodes (i-1, j) and (i, j): interpolated from the four
        // surrounding cell-face mass fluxes.
        auto node_flux = [&](int i) {
            return 0.25 * (mf_s[i - 1] + mf_s[i] + mf_n[i - 1] +
                           mf_n[i]);
        };
        for (int i = g; i <= g + cfg.nx; ++i) {
            const double f_in = node_flux(i);
            const double f_out = node_flux(i + 1);
            const int don_in = f_in > 0.0 ? i - 1 : i;
            const int don_out = f_out > 0.0 ? i : i + 1;
            const double m1 = std::max(nm1[i], fieldFloor);
            vxr[i] = (nm0[i] * vbx[i] + f_in * vbx[don_in] -
                      f_out * vbx[don_out]) / m1;
            vyr[i] = (nm0[i] * vby[i] + f_in * vby[don_in] -
                      f_out * vby[don_out]) / m1;
        }
    });
    applyVelocityBc();
}

void
CloverSolver2D::advectCellY()
{
    const double vol = cfg.dx * cfg.dy;
    const bool first_sweep = (cycleCount % 2) != 0;
    const int g = ghosts;

    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);

    forRows(g - 1, g + cfg.ny + 1, [&](int j) {
        double *pre = preVol.data() + cid(0, j);
        double *post = postVol.data() + cid(0, j);
        const double *fvx = volFluxX.data() + nid(0, j);
        const double *fvy0 = volFluxY.data() + nid(0, j);
        const double *fvy1 = volFluxY.data() + nid(0, j + 1);
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double fx = fvx[i + 1] - fvx[i];
            const double fy = fvy1[i] - fvy0[i];
            pre[i] = vol + fy + (first_sweep ? fx : 0.0);
            post[i] = pre[i] - fy;
        }
    });

    forRows(g - 1, g + cfg.ny + 2, [&](int j) {
        double *mfy = massFluxY.data() + nid(0, j);
        double *ef = eFlux.data() + nid(0, j);
        const double *fvy = volFluxY.data() + nid(0, j);
        const double *rho_s = rho1_.data() + cid(0, j - 1);
        const double *rho_c = rho1_.data() + cid(0, j);
        const double *e_s = e1_.data() + cid(0, j - 1);
        const double *e_c = e1_.data() + cid(0, j);
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double vf = fvy[i];
            const double rho_d = vf > 0.0 ? rho_s[i] : rho_c[i];
            const double e_d = vf > 0.0 ? e_s[i] : e_c[i];
            mfy[i] = vf * rho_d;
            ef[i] = mfy[i] * e_d;
        }
    });

    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *nm = nodeMass0.data() + nid(0, j);
        const double *rho_s = rho1_.data() + cid(0, j - 1);
        const double *rho_n = rho1_.data() + cid(0, j);
        const double *pre_s = preVol.data() + cid(0, j - 1);
        const double *pre_n = preVol.data() + cid(0, j);
        for (int i = g; i <= g + cfg.nx; ++i) {
            nm[i] = 0.25 * (rho_s[i - 1] * pre_s[i - 1] +
                            rho_s[i] * pre_s[i] +
                            rho_n[i - 1] * pre_n[i - 1] +
                            rho_n[i] * pre_n[i]);
        }
    });

    forRows(g - 1, g + cfg.ny + 1, [&](int j) {
        double *rho1 = rho1_.data() + cid(0, j);
        double *e1 = e1_.data() + cid(0, j);
        const double *pre = preVol.data() + cid(0, j);
        const double *post = postVol.data() + cid(0, j);
        const double *mf0 = massFluxY.data() + nid(0, j);
        const double *mf1 = massFluxY.data() + nid(0, j + 1);
        const double *ef0 = eFlux.data() + nid(0, j);
        const double *ef1 = eFlux.data() + nid(0, j + 1);
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double pre_mass = rho1[i] * pre[i];
            const double post_mass = pre_mass + mf0[i] - mf1[i];
            const double post_energy =
                e1[i] * pre_mass + ef0[i] - ef1[i];
            rho1[i] = std::max(post_mass / post[i], fieldFloor);
            e1[i] = std::max(
                post_energy / std::max(post_mass, fieldFloor),
                fieldFloor);
        }
    });
}

void
CloverSolver2D::advectMomY()
{
    const int g = ghosts;

    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *nm = nodeMass1.data() + nid(0, j);
        const double *rho_s = rho1_.data() + cid(0, j - 1);
        const double *rho_n = rho1_.data() + cid(0, j);
        const double *post_s = postVol.data() + cid(0, j - 1);
        const double *post_n = postVol.data() + cid(0, j);
        for (int i = g; i <= g + cfg.nx; ++i) {
            nm[i] = 0.25 * (rho_s[i - 1] * post_s[i - 1] +
                            rho_s[i] * post_s[i] +
                            rho_n[i - 1] * post_n[i - 1] +
                            rho_n[i] * post_n[i]);
        }
    });

    vxBar = vx_;
    vyBar = vy_;

    forRows(g, g + cfg.ny + 1, [&](int j) {
        double *vxr = vx_.data() + nid(0, j);
        double *vyr = vy_.data() + nid(0, j);
        const double *nm0 = nodeMass0.data() + nid(0, j);
        const double *nm1 = nodeMass1.data() + nid(0, j);
        const double *mf_s = massFluxY.data() + nid(0, j - 1);
        const double *mf_c = massFluxY.data() + nid(0, j);
        const double *mf_n = massFluxY.data() + nid(0, j + 1);
        const double *vbx_s = vxBar.data() + nid(0, j - 1);
        const double *vbx_c = vxBar.data() + nid(0, j);
        const double *vbx_n = vxBar.data() + nid(0, j + 1);
        const double *vby_s = vyBar.data() + nid(0, j - 1);
        const double *vby_c = vyBar.data() + nid(0, j);
        const double *vby_n = vyBar.data() + nid(0, j + 1);
        for (int i = g; i <= g + cfg.nx; ++i) {
            const double f_in =
                0.25 * (mf_s[i - 1] + mf_c[i - 1] + mf_s[i] +
                        mf_c[i]);
            const double f_out =
                0.25 * (mf_c[i - 1] + mf_n[i - 1] + mf_c[i] +
                        mf_n[i]);
            const double *vbx_in = f_in > 0.0 ? vbx_s : vbx_c;
            const double *vbx_out = f_out > 0.0 ? vbx_c : vbx_n;
            const double *vby_in = f_in > 0.0 ? vby_s : vby_c;
            const double *vby_out = f_out > 0.0 ? vby_c : vby_n;
            const double m1 = std::max(nm1[i], fieldFloor);
            vxr[i] = (nm0[i] * vbx_c[i] + f_in * vbx_in[i] -
                      f_out * vbx_out[i]) / m1;
            vyr[i] = (nm0[i] * vby_c[i] + f_in * vby_in[i] -
                      f_out * vby_out[i]) / m1;
        }
    });
    applyVelocityBc();
}

void
CloverSolver2D::step(double dt)
{
    TDFE_ASSERT(dt > 0.0 && std::isfinite(dt),
                "step requires a positive finite dt");

    updateHalo();
    idealGas();
    viscosity();
    accelerate(dt);
    fluxCalc(dt);
    pdv();

    // Directionally-split remap; alternate the sweep order each
    // cycle to avoid a preferred axis.
    if (cycleCount % 2 == 0) {
        advectCellX();
        advectMomX();
        advectCellY();
        advectMomY();
    } else {
        advectCellY();
        advectMomY();
        advectCellX();
        advectMomX();
    }

    // Reset: remapped state becomes the start-of-cycle state.
    std::swap(rho0_, rho1_);
    std::swap(e0_, e1_);

    t += dt;
    ++cycleCount;
    lastDt = dt;
}

double
CloverSolver2D::advance()
{
    const double dt = calcDt();
    step(dt);
    return dt;
}

} // namespace clover

} // namespace tdfe
