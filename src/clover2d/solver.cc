#include "clover2d/solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace tdfe
{

namespace clover
{

namespace
{

/** Smallest admissible density / specific energy (vacuum guard). */
constexpr double fieldFloor = 1e-12;

} // namespace

CloverSolver2D::CloverSolver2D(const CloverConfig &config)
    : cfg(config), eos_(config.gamma)
{
    TDFE_ASSERT(cfg.nx > 0 && cfg.ny > 0,
                "grid extents must be positive");
    TDFE_ASSERT(cfg.dx > 0.0 && cfg.dy > 0.0,
                "cell widths must be positive");
    TDFE_ASSERT(cfg.cfl > 0.0 && cfg.cfl < 1.0,
                "CFL must be in (0, 1)");

    pcx = cfg.nx + 2 * ghosts;
    pcy = cfg.ny + 2 * ghosts;
    pnx = pcx + 1;
    pny = pcy + 1;

    const std::size_t nc = static_cast<std::size_t>(pcx) * pcy;
    const std::size_t nn = static_cast<std::size_t>(pnx) * pny;

    rho0_.assign(nc, cfg.rho0);
    rho1_.assign(nc, cfg.rho0);
    const double e_ambient = eos_.energy(cfg.rho0, cfg.p0);
    e0_.assign(nc, e_ambient);
    e1_.assign(nc, e_ambient);
    p_.assign(nc, cfg.p0);
    q_.assign(nc, 0.0);
    cs_.assign(nc, eos_.soundSpeed(cfg.rho0, cfg.p0));
    preVol.assign(nc, cfg.dx * cfg.dy);
    postVol.assign(nc, cfg.dx * cfg.dy);

    vx_.assign(nn, 0.0);
    vy_.assign(nn, 0.0);
    vxBar.assign(nn, 0.0);
    vyBar.assign(nn, 0.0);
    nodeMass0.assign(nn, 0.0);
    nodeMass1.assign(nn, 0.0);
    volFluxX.assign(nn, 0.0);
    volFluxY.assign(nn, 0.0);
    massFluxX.assign(nn, 0.0);
    massFluxY.assign(nn, 0.0);
    eFlux.assign(nn, 0.0);
}

std::size_t
CloverSolver2D::cid(int i, int j) const
{
    return static_cast<std::size_t>(j) * pcx +
           static_cast<std::size_t>(i);
}

std::size_t
CloverSolver2D::nid(int i, int j) const
{
    return static_cast<std::size_t>(j) * pnx +
           static_cast<std::size_t>(i);
}

void
CloverSolver2D::depositCornerEnergy(double energy)
{
    TDFE_ASSERT(energy > 0.0, "blast energy must be positive");
    const double cell_mass = cfg.rho0 * cfg.dx * cfg.dy;
    e0_[cid(ghosts, ghosts)] = energy / cell_mass;
    e1_[cid(ghosts, ghosts)] = energy / cell_mass;
}

double
CloverSolver2D::density(int i, int j) const
{
    return rho0_[cid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::energy(int i, int j) const
{
    return e0_[cid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::pressure(int i, int j) const
{
    const std::size_t c = cid(i + ghosts, j + ghosts);
    return eos_.pressure(rho0_[c], e0_[c]);
}

double
CloverSolver2D::xvel(int i, int j) const
{
    return vx_[nid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::yvel(int i, int j) const
{
    return vy_[nid(i + ghosts, j + ghosts)];
}

double
CloverSolver2D::speedAt(int i, int j) const
{
    const int gi = i + ghosts;
    const int gj = j + ghosts;
    const double u = 0.25 * (vx_[nid(gi, gj)] + vx_[nid(gi + 1, gj)] +
                             vx_[nid(gi, gj + 1)] +
                             vx_[nid(gi + 1, gj + 1)]);
    const double v = 0.25 * (vy_[nid(gi, gj)] + vy_[nid(gi + 1, gj)] +
                             vy_[nid(gi, gj + 1)] +
                             vy_[nid(gi + 1, gj + 1)]);
    return std::sqrt(u * u + v * v);
}

double
CloverSolver2D::totalMass() const
{
    double sum = 0.0;
    for (int j = ghosts; j < ghosts + cfg.ny; ++j)
        for (int i = ghosts; i < ghosts + cfg.nx; ++i)
            sum += rho0_[cid(i, j)];
    return sum * cfg.dx * cfg.dy;
}

double
CloverSolver2D::totalEnergy() const
{
    double sum = 0.0;
    for (int j = 0; j < cfg.ny; ++j) {
        for (int i = 0; i < cfg.nx; ++i) {
            const std::size_t c = cid(i + ghosts, j + ghosts);
            const double v = speedAt(i, j);
            sum += rho0_[c] * (e0_[c] + 0.5 * v * v);
        }
    }
    return sum * cfg.dx * cfg.dy;
}

void
CloverSolver2D::idealGas()
{
    const std::size_t nc = rho0_.size();
    for (std::size_t c = 0; c < nc; ++c) {
        p_[c] = eos_.pressure(rho0_[c], e0_[c]);
        cs_[c] = eos_.soundSpeed(rho0_[c], p_[c]);
    }
}

namespace
{

/**
 * Mirror a ghost-padded cell field: reflective on the low edges
 * (blast symmetry planes), zero-gradient outflow on the high edges.
 */
void
haloFillCell(std::vector<double> &f, int pcx, int pcy, int nx, int ny,
             int g)
{
    // X direction, every row (ghost rows fixed by the y pass below).
    for (int j = 0; j < pcy; ++j) {
        double *row = f.data() + static_cast<std::size_t>(j) * pcx;
        for (int k = 0; k < g; ++k) {
            row[g - 1 - k] = row[g + k];
            row[g + nx + k] = row[g + nx - 1];
        }
    }
    // Y direction, whole rows at a time.
    for (int k = 0; k < g; ++k) {
        const std::size_t lo_dst =
            static_cast<std::size_t>(g - 1 - k) * pcx;
        const std::size_t lo_src = static_cast<std::size_t>(g + k) * pcx;
        const std::size_t hi_dst =
            static_cast<std::size_t>(g + ny + k) * pcx;
        const std::size_t hi_src =
            static_cast<std::size_t>(g + ny - 1) * pcx;
        for (int i = 0; i < pcx; ++i) {
            f[lo_dst + i] = f[lo_src + i];
            f[hi_dst + i] = f[hi_src + i];
        }
    }
}

} // namespace

void
CloverSolver2D::updateHalo()
{
    haloFillCell(rho0_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e0_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

void
CloverSolver2D::viscosity()
{
    for (int j = ghosts; j < ghosts + cfg.ny; ++j) {
        for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            // Velocity jumps across the cell (face-averaged).
            const double du =
                0.5 * (vx_[nid(i + 1, j)] + vx_[nid(i + 1, j + 1)] -
                       vx_[nid(i, j)] - vx_[nid(i, j + 1)]);
            const double dv =
                0.5 * (vy_[nid(i, j + 1)] + vy_[nid(i + 1, j + 1)] -
                       vy_[nid(i, j)] - vy_[nid(i + 1, j)]);
            const double jump = du + dv;
            if (jump < 0.0) {
                q_[c] = rho0_[c] *
                        (cfg.cvisc2 * jump * jump +
                         cfg.cvisc1 * cs_[c] * std::fabs(jump));
            } else {
                q_[c] = 0.0;
            }
        }
    }
    haloFillCell(q_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

double
CloverSolver2D::calcDt()
{
    updateHalo();
    idealGas();
    viscosity();

    double dt = lastDt > 0.0 ? lastDt * cfg.dtGrowth : cfg.dtInit;
    for (int j = ghosts; j < ghosts + cfg.ny; ++j) {
        for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double cs2 =
                cs_[c] * cs_[c] + 2.0 * q_[c] / rho0_[c];
            const double cs_eff = std::sqrt(cs2);
            const double u = 0.25 *
                (std::fabs(vx_[nid(i, j)]) +
                 std::fabs(vx_[nid(i + 1, j)]) +
                 std::fabs(vx_[nid(i, j + 1)]) +
                 std::fabs(vx_[nid(i + 1, j + 1)]));
            const double v = 0.25 *
                (std::fabs(vy_[nid(i, j)]) +
                 std::fabs(vy_[nid(i + 1, j)]) +
                 std::fabs(vy_[nid(i, j + 1)]) +
                 std::fabs(vy_[nid(i + 1, j + 1)]));
            const double dt_x = cfg.dx / (cs_eff + u + 1e-30);
            const double dt_y = cfg.dy / (cs_eff + v + 1e-30);
            dt = std::min(dt, cfg.cfl * std::min(dt_x, dt_y));
        }
    }
    TDFE_ASSERT(dt > 0.0 && std::isfinite(dt),
                "clover2d produced a non-positive timestep");
    return dt;
}

void
CloverSolver2D::applyVelocityBc()
{
    const int g = ghosts;
    const int inx = g + cfg.nx;
    const int iny = g + cfg.ny;

    // Low-x symmetry plane: no normal flow, mirrored ghosts.
    for (int j = 0; j < pny; ++j) {
        vx_[nid(g, j)] = 0.0;
        for (int k = 1; k <= g; ++k) {
            vx_[nid(g - k, j)] = -vx_[nid(g + k, j)];
            vy_[nid(g - k, j)] = vy_[nid(g + k, j)];
        }
        for (int k = 1; k <= g; ++k) {
            vx_[nid(inx + k, j)] = vx_[nid(inx, j)];
            vy_[nid(inx + k, j)] = vy_[nid(inx, j)];
        }
    }
    // Low-y symmetry plane and high-y outflow.
    for (int i = 0; i < pnx; ++i) {
        vy_[nid(i, g)] = 0.0;
        for (int k = 1; k <= g; ++k) {
            vy_[nid(i, g - k)] = -vy_[nid(i, g + k)];
            vx_[nid(i, g - k)] = vx_[nid(i, g + k)];
        }
        for (int k = 1; k <= g; ++k) {
            vy_[nid(i, iny + k)] = vy_[nid(i, iny)];
            vx_[nid(i, iny + k)] = vx_[nid(i, iny)];
        }
    }
}

void
CloverSolver2D::accelerate(double dt)
{
    // Time-centering: remember the pre-acceleration velocities, the
    // PdV/flux stage uses the average of old and new.
    vxBar = vx_;
    vyBar = vy_;

    const double inv_dx = 1.0 / cfg.dx;
    const double inv_dy = 1.0 / cfg.dy;
    for (int j = ghosts; j <= ghosts + cfg.ny; ++j) {
        for (int i = ghosts; i <= ghosts + cfg.nx; ++i) {
            const std::size_t sw = cid(i - 1, j - 1);
            const std::size_t se = cid(i, j - 1);
            const std::size_t nw = cid(i - 1, j);
            const std::size_t ne = cid(i, j);
            const double rho_n = 0.25 * (rho0_[sw] + rho0_[se] +
                                         rho0_[nw] + rho0_[ne]);
            const double dpqdx =
                0.5 * ((p_[se] + q_[se] + p_[ne] + q_[ne]) -
                       (p_[sw] + q_[sw] + p_[nw] + q_[nw])) * inv_dx;
            const double dpqdy =
                0.5 * ((p_[nw] + q_[nw] + p_[ne] + q_[ne]) -
                       (p_[sw] + q_[sw] + p_[se] + q_[se])) * inv_dy;
            vx_[nid(i, j)] -= dt * dpqdx / rho_n;
            vy_[nid(i, j)] -= dt * dpqdy / rho_n;
        }
    }
    applyVelocityBc();

    const std::size_t nn = vx_.size();
    for (std::size_t n = 0; n < nn; ++n) {
        vxBar[n] = 0.5 * (vxBar[n] + vx_[n]);
        vyBar[n] = 0.5 * (vyBar[n] + vy_[n]);
    }
}

void
CloverSolver2D::fluxCalc(double dt)
{
    // Face volume fluxes from time-centered node velocities; the
    // extended range (one ghost ring) also feeds the momentum remap.
    for (int j = ghosts - 1; j < ghosts + cfg.ny + 1; ++j) {
        for (int i = ghosts - 1; i < ghosts + cfg.nx + 2; ++i) {
            volFluxX[nid(i, j)] =
                0.5 * dt * cfg.dy *
                (vxBar[nid(i, j)] + vxBar[nid(i, j + 1)]);
        }
    }
    for (int j = ghosts - 1; j < ghosts + cfg.ny + 2; ++j) {
        for (int i = ghosts - 1; i < ghosts + cfg.nx + 1; ++i) {
            volFluxY[nid(i, j)] =
                0.5 * dt * cfg.dx *
                (vyBar[nid(i, j)] + vyBar[nid(i + 1, j)]);
        }
    }
}

void
CloverSolver2D::pdv()
{
    const double vol = cfg.dx * cfg.dy;
    for (int j = ghosts; j < ghosts + cfg.ny; ++j) {
        for (int i = ghosts; i < ghosts + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double total_flux =
                volFluxX[nid(i + 1, j)] - volFluxX[nid(i, j)] +
                volFluxY[nid(i, j + 1)] - volFluxY[nid(i, j)];
            double vol_lagr = vol + total_flux;
            if (vol_lagr < 0.1 * vol) {
                TDFE_WARN("clover2d: clamped collapsing cell (",
                          i - ghosts, ", ", j - ghosts, ") at cycle ",
                          cycleCount);
                vol_lagr = 0.1 * vol;
            }
            rho1_[c] = std::max(rho0_[c] * vol / vol_lagr, fieldFloor);
            const double de =
                (p_[c] + q_[c]) * total_flux / (rho0_[c] * vol);
            e1_[c] = std::max(e0_[c] - de, fieldFloor);
        }
    }
    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
}

void
CloverSolver2D::advectCellX()
{
    const double vol = cfg.dx * cfg.dy;
    const bool first_sweep = (cycleCount % 2) == 0;
    const int g = ghosts;

    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);

    // Lagrangian (pre) and post-sweep control volumes, one ghost
    // ring included so boundary node masses see consistent values.
    // The first sweep of a cycle starts from the fully-expanded
    // Lagrangian volume (both directions' fluxes); the second sweep
    // only has its own direction left to remap.
    for (int j = g - 1; j <= g + cfg.ny; ++j) {
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double fx =
                volFluxX[nid(i + 1, j)] - volFluxX[nid(i, j)];
            const double fy =
                volFluxY[nid(i, j + 1)] - volFluxY[nid(i, j)];
            preVol[c] = vol + fx + (first_sweep ? fy : 0.0);
            postVol[c] = preVol[c] - fx;
        }
    }

    // Donor-cell mass and internal-energy fluxes, all from
    // pre-update values so the update loop below has no ordering
    // hazard.
    for (int j = g - 1; j <= g + cfg.ny; ++j) {
        for (int i = g - 1; i <= g + cfg.nx + 1; ++i) {
            const double vf = volFluxX[nid(i, j)];
            const std::size_t donor =
                vf > 0.0 ? cid(i - 1, j) : cid(i, j);
            massFluxX[nid(i, j)] = vf * rho1_[donor];
            eFlux[nid(i, j)] = massFluxX[nid(i, j)] * e1_[donor];
        }
    }

    // Node masses on the Lagrangian volumes, for the momentum remap.
    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            nodeMass0[nid(i, j)] = 0.25 *
                (rho1_[cid(i - 1, j - 1)] * preVol[cid(i - 1, j - 1)] +
                 rho1_[cid(i, j - 1)] * preVol[cid(i, j - 1)] +
                 rho1_[cid(i - 1, j)] * preVol[cid(i - 1, j)] +
                 rho1_[cid(i, j)] * preVol[cid(i, j)]);
        }
    }

    // Conservative remap of mass and internal energy.
    for (int j = g - 1; j <= g + cfg.ny; ++j) {
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double pre_mass = rho1_[c] * preVol[c];
            const double post_mass = pre_mass + massFluxX[nid(i, j)] -
                                     massFluxX[nid(i + 1, j)];
            const double post_energy = e1_[c] * pre_mass +
                                       eFlux[nid(i, j)] -
                                       eFlux[nid(i + 1, j)];
            rho1_[c] = std::max(post_mass / postVol[c], fieldFloor);
            e1_[c] = std::max(
                post_energy / std::max(post_mass, fieldFloor),
                fieldFloor);
        }
    }
}

void
CloverSolver2D::advectMomX()
{
    const int g = ghosts;

    // Node masses after the cell remap.
    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            nodeMass1[nid(i, j)] = 0.25 *
                (rho1_[cid(i - 1, j - 1)] * postVol[cid(i - 1, j - 1)] +
                 rho1_[cid(i, j - 1)] * postVol[cid(i, j - 1)] +
                 rho1_[cid(i - 1, j)] * postVol[cid(i - 1, j)] +
                 rho1_[cid(i, j)] * postVol[cid(i, j)]);
        }
    }

    // Donor velocities come from a frozen copy of the node fields.
    vxBar = vx_;
    vyBar = vy_;

    // Node-control-volume mass flux across the face between nodes
    // (i-1, j) and (i, j): interpolated from the four surrounding
    // cell-face mass fluxes.
    auto node_flux = [this](int i, int j) {
        return 0.25 * (massFluxX[nid(i - 1, j - 1)] +
                       massFluxX[nid(i, j - 1)] +
                       massFluxX[nid(i - 1, j)] + massFluxX[nid(i, j)]);
    };

    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            const double f_in = node_flux(i, j);
            const double f_out = node_flux(i + 1, j);
            const std::size_t don_in =
                f_in > 0.0 ? nid(i - 1, j) : nid(i, j);
            const std::size_t don_out =
                f_out > 0.0 ? nid(i, j) : nid(i + 1, j);
            const double m1 = std::max(nodeMass1[nid(i, j)], fieldFloor);
            vx_[nid(i, j)] = (nodeMass0[nid(i, j)] * vxBar[nid(i, j)] +
                              f_in * vxBar[don_in] -
                              f_out * vxBar[don_out]) / m1;
            vy_[nid(i, j)] = (nodeMass0[nid(i, j)] * vyBar[nid(i, j)] +
                              f_in * vyBar[don_in] -
                              f_out * vyBar[don_out]) / m1;
        }
    }
    applyVelocityBc();
}

void
CloverSolver2D::advectCellY()
{
    const double vol = cfg.dx * cfg.dy;
    const bool first_sweep = (cycleCount % 2) != 0;
    const int g = ghosts;

    haloFillCell(rho1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);
    haloFillCell(e1_, pcx, pcy, cfg.nx, cfg.ny, ghosts);

    for (int j = g - 1; j <= g + cfg.ny; ++j) {
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double fx =
                volFluxX[nid(i + 1, j)] - volFluxX[nid(i, j)];
            const double fy =
                volFluxY[nid(i, j + 1)] - volFluxY[nid(i, j)];
            preVol[c] = vol + fy + (first_sweep ? fx : 0.0);
            postVol[c] = preVol[c] - fy;
        }
    }

    for (int j = g - 1; j <= g + cfg.ny + 1; ++j) {
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const double vf = volFluxY[nid(i, j)];
            const std::size_t donor =
                vf > 0.0 ? cid(i, j - 1) : cid(i, j);
            massFluxY[nid(i, j)] = vf * rho1_[donor];
            eFlux[nid(i, j)] = massFluxY[nid(i, j)] * e1_[donor];
        }
    }

    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            nodeMass0[nid(i, j)] = 0.25 *
                (rho1_[cid(i - 1, j - 1)] * preVol[cid(i - 1, j - 1)] +
                 rho1_[cid(i, j - 1)] * preVol[cid(i, j - 1)] +
                 rho1_[cid(i - 1, j)] * preVol[cid(i - 1, j)] +
                 rho1_[cid(i, j)] * preVol[cid(i, j)]);
        }
    }

    for (int j = g - 1; j <= g + cfg.ny; ++j) {
        for (int i = g - 1; i <= g + cfg.nx; ++i) {
            const std::size_t c = cid(i, j);
            const double pre_mass = rho1_[c] * preVol[c];
            const double post_mass = pre_mass + massFluxY[nid(i, j)] -
                                     massFluxY[nid(i, j + 1)];
            const double post_energy = e1_[c] * pre_mass +
                                       eFlux[nid(i, j)] -
                                       eFlux[nid(i, j + 1)];
            rho1_[c] = std::max(post_mass / postVol[c], fieldFloor);
            e1_[c] = std::max(
                post_energy / std::max(post_mass, fieldFloor),
                fieldFloor);
        }
    }
}

void
CloverSolver2D::advectMomY()
{
    const int g = ghosts;

    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            nodeMass1[nid(i, j)] = 0.25 *
                (rho1_[cid(i - 1, j - 1)] * postVol[cid(i - 1, j - 1)] +
                 rho1_[cid(i, j - 1)] * postVol[cid(i, j - 1)] +
                 rho1_[cid(i - 1, j)] * postVol[cid(i - 1, j)] +
                 rho1_[cid(i, j)] * postVol[cid(i, j)]);
        }
    }

    vxBar = vx_;
    vyBar = vy_;

    auto node_flux = [this](int i, int j) {
        return 0.25 * (massFluxY[nid(i - 1, j - 1)] +
                       massFluxY[nid(i - 1, j)] +
                       massFluxY[nid(i, j - 1)] + massFluxY[nid(i, j)]);
    };

    for (int j = g; j <= g + cfg.ny; ++j) {
        for (int i = g; i <= g + cfg.nx; ++i) {
            const double f_in = node_flux(i, j);
            const double f_out = node_flux(i, j + 1);
            const std::size_t don_in =
                f_in > 0.0 ? nid(i, j - 1) : nid(i, j);
            const std::size_t don_out =
                f_out > 0.0 ? nid(i, j) : nid(i, j + 1);
            const double m1 = std::max(nodeMass1[nid(i, j)], fieldFloor);
            vx_[nid(i, j)] = (nodeMass0[nid(i, j)] * vxBar[nid(i, j)] +
                              f_in * vxBar[don_in] -
                              f_out * vxBar[don_out]) / m1;
            vy_[nid(i, j)] = (nodeMass0[nid(i, j)] * vyBar[nid(i, j)] +
                              f_in * vyBar[don_in] -
                              f_out * vyBar[don_out]) / m1;
        }
    }
    applyVelocityBc();
}

void
CloverSolver2D::step(double dt)
{
    TDFE_ASSERT(dt > 0.0 && std::isfinite(dt),
                "step requires a positive finite dt");

    updateHalo();
    idealGas();
    viscosity();
    accelerate(dt);
    fluxCalc(dt);
    pdv();

    // Directionally-split remap; alternate the sweep order each
    // cycle to avoid a preferred axis.
    if (cycleCount % 2 == 0) {
        advectCellX();
        advectMomX();
        advectCellY();
        advectMomY();
    } else {
        advectCellY();
        advectMomY();
        advectCellX();
        advectMomX();
    }

    // Reset: remapped state becomes the start-of-cycle state.
    std::swap(rho0_, rho1_);
    std::swap(e0_, e1_);

    t += dt;
    ++cycleCount;
    lastDt = dt;
}

double
CloverSolver2D::advance()
{
    const double dt = calcDt();
    step(dt);
    return dt;
}

} // namespace clover

} // namespace tdfe
