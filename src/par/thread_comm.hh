/**
 * @file
 * Thread-backed rank emulation.
 *
 * ThreadCommWorld::run(nranks, body) spawns one std::thread per rank
 * and hands each a Communicator bound to shared state. Collectives
 * synchronise through a central generation-counted barrier; point-to-
 * point messages flow through mutex-protected mailboxes. This gives
 * the paper's MPI call pattern real synchronisation cost (which the
 * overhead tables measure) without an MPI installation.
 */

#ifndef TDFE_PAR_THREAD_COMM_HH
#define TDFE_PAR_THREAD_COMM_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "par/comm.hh"

namespace tdfe
{

/**
 * Shared state of one in-flight non-blocking collective. Ranks
 * match by per-rank sequence number (all ranks must post their
 * non-blocking collectives in the same order); the op completes when
 * the last rank posts, which reduces the per-rank contributions *in
 * rank order* — deterministic run to run, and bitwise identical to
 * the blocking scalar allreduce (which also folds in rank order;
 * the blocking allreduceVec folds in arrival order instead, so for
 * floating-point Sum only the non-blocking vec path is
 * reproducible). Each rank then copies the result into its own output
 * buffer from its own thread, at its first successful test() or at
 * wait() — never from another rank's thread, so a rank may drop its
 * request (and even free its buffers) without affecting the rest.
 */
struct NbCollective
{
    enum class Kind
    {
        Allreduce,
        AllreduceVec,
        Bcast,
    };

    Kind kind = Kind::Allreduce;
    ReduceOp op = ReduceOp::Sum;
    std::size_t count = 0;
    int root = 0;
    int contributions = 0;
    /** Per-rank contributions (bcast: only parts[root] is used). */
    std::vector<std::vector<double>> parts;
    /** Reduced/broadcast payload, written by the last contributor. */
    std::vector<double> result;
    bool complete = false;
};

/**
 * Owns the shared synchronisation state for a set of thread ranks
 * and runs a rank body across all of them.
 */
class ThreadCommWorld
{
  public:
    /** @param nranks Number of emulated ranks (threads). */
    explicit ThreadCommWorld(int nranks);

    /**
     * Execute @p body once per rank, each on its own thread, and
     * join. The Communicator passed in is valid only for the call.
     */
    void run(const std::function<void(Communicator &)> &body);

    /** @return configured rank count. */
    int size() const { return nRanks; }

  private:
    friend class ThreadCommRank;
    friend class ThreadNbOp;

    /** Generation-counted central barrier. */
    void barrier();

    int nRanks;

    std::mutex mtx;
    std::condition_variable cv;

    // Barrier state.
    int arrived = 0;
    std::uint64_t generation = 0;

    // Collective scratch.
    std::vector<double> bcastBuffer;
    std::vector<double> reduceSlots;
    std::vector<double> vecSlot;
    int vecContributors = 0;

    // In-flight non-blocking collectives keyed by sequence slot; the
    // last contributor completes the op and erases the entry (the
    // requests keep the shared state alive).
    std::map<std::uint64_t, std::shared_ptr<NbCollective>> nbOps;
    std::condition_variable nbCv;

    // Mailboxes keyed by (src, dest, tag).
    std::map<std::tuple<int, int, int>,
             std::deque<std::vector<double>>> mailboxes;
    std::condition_variable mailCv;
};

/**
 * Per-rank Communicator view onto a ThreadCommWorld. Instances are
 * created by ThreadCommWorld::run and passed to the rank body.
 */
class ThreadCommRank : public Communicator
{
  public:
    ThreadCommRank(ThreadCommWorld &world, int rank);

    int rank() const override { return myRank; }
    int size() const override { return world.nRanks; }
    void barrier() override { world.barrier(); }
    void bcast(double *data, std::size_t count, int root) override;
    double allreduce(double value, ReduceOp op) override;
    void allreduceVec(double *data, std::size_t count,
                      ReduceOp op) override;
    CommRequest iallreduce(double value, ReduceOp op,
                           double *result) override;
    CommRequest iallreduceVec(double *data, std::size_t count,
                              ReduceOp op) override;
    CommRequest ibcast(double *data, std::size_t count,
                       int root) override;
    void send(int dest, int tag,
              const std::vector<double> &payload) override;
    std::vector<double> recv(int src, int tag) override;

  private:
    /** Post one non-blocking collective into the next sequence
     *  slot; @p contribution is this rank's payload (ignored for
     *  non-root bcast posts), @p out where the result lands. */
    CommRequest postCollective(NbCollective::Kind kind,
                               const double *contribution,
                               std::size_t count, ReduceOp op,
                               int root, double *out);

    ThreadCommWorld &world;
    int myRank;
    /** Next non-blocking collective slot this rank will post into. */
    std::uint64_t nbSeq = 0;
};

} // namespace tdfe

#endif // TDFE_PAR_THREAD_COMM_HH
