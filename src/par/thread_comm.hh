/**
 * @file
 * Thread-backed rank emulation.
 *
 * ThreadCommWorld::run(nranks, body) spawns one std::thread per rank
 * and hands each a Communicator bound to shared state. Collectives
 * synchronise through a central generation-counted barrier; point-to-
 * point messages flow through mutex-protected mailboxes. This gives
 * the paper's MPI call pattern real synchronisation cost (which the
 * overhead tables measure) without an MPI installation.
 */

#ifndef TDFE_PAR_THREAD_COMM_HH
#define TDFE_PAR_THREAD_COMM_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "par/comm.hh"

namespace tdfe
{

/**
 * Owns the shared synchronisation state for a set of thread ranks
 * and runs a rank body across all of them.
 */
class ThreadCommWorld
{
  public:
    /** @param nranks Number of emulated ranks (threads). */
    explicit ThreadCommWorld(int nranks);

    /**
     * Execute @p body once per rank, each on its own thread, and
     * join. The Communicator passed in is valid only for the call.
     */
    void run(const std::function<void(Communicator &)> &body);

    /** @return configured rank count. */
    int size() const { return nRanks; }

  private:
    friend class ThreadCommRank;

    /** Generation-counted central barrier. */
    void barrier();

    int nRanks;

    std::mutex mtx;
    std::condition_variable cv;

    // Barrier state.
    int arrived = 0;
    std::uint64_t generation = 0;

    // Collective scratch.
    std::vector<double> bcastBuffer;
    std::vector<double> reduceSlots;
    std::vector<double> vecSlot;
    int vecContributors = 0;

    // Mailboxes keyed by (src, dest, tag).
    std::map<std::tuple<int, int, int>,
             std::deque<std::vector<double>>> mailboxes;
    std::condition_variable mailCv;
};

/**
 * Per-rank Communicator view onto a ThreadCommWorld. Instances are
 * created by ThreadCommWorld::run and passed to the rank body.
 */
class ThreadCommRank : public Communicator
{
  public:
    ThreadCommRank(ThreadCommWorld &world, int rank);

    int rank() const override { return myRank; }
    int size() const override { return world.nRanks; }
    void barrier() override { world.barrier(); }
    void bcast(double *data, std::size_t count, int root) override;
    double allreduce(double value, ReduceOp op) override;
    void allreduceVec(double *data, std::size_t count,
                      ReduceOp op) override;
    void send(int dest, int tag,
              const std::vector<double> &payload) override;
    std::vector<double> recv(int src, int tag) override;

  private:
    ThreadCommWorld &world;
    int myRank;
};

} // namespace tdfe

#endif // TDFE_PAR_THREAD_COMM_HH
