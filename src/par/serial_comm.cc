#include "par/serial_comm.hh"

#include "base/logging.hh"

namespace tdfe
{

void
SerialComm::bcast(double *data, std::size_t count, int root)
{
    TDFE_ASSERT(root == 0, "serial comm has only rank 0");
    (void)data;
    (void)count;
}

double
SerialComm::allreduce(double value, ReduceOp op)
{
    (void)op;
    return value;
}

void
SerialComm::allreduceVec(double *data, std::size_t count, ReduceOp op)
{
    (void)data;
    (void)count;
    (void)op;
}

CommRequest
SerialComm::iallreduce(double value, ReduceOp op, double *result)
{
    // One rank: the reduction is the identity and completes at post
    // time; the returned (null) request immediately tests true.
    (void)op;
    *result = value;
    return CommRequest();
}

CommRequest
SerialComm::iallreduceVec(double *data, std::size_t count, ReduceOp op)
{
    allreduceVec(data, count, op);
    return CommRequest();
}

CommRequest
SerialComm::ibcast(double *data, std::size_t count, int root)
{
    bcast(data, count, root);
    return CommRequest();
}

void
SerialComm::send(int dest, int tag, const std::vector<double> &payload)
{
    TDFE_ASSERT(dest == 0, "serial comm can only self-send");
    loopback[tag].push_back(payload);
}

std::vector<double>
SerialComm::recv(int src, int tag)
{
    TDFE_ASSERT(src == 0, "serial comm can only self-receive");
    auto &queue = loopback[tag];
    TDFE_ASSERT(!queue.empty(),
                "serial recv with no matching send (tag ", tag, ")");
    std::vector<double> out = std::move(queue.front());
    queue.pop_front();
    return out;
}

} // namespace tdfe
