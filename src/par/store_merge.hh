/**
 * @file
 * Rank-decomposed feature-store plumbing: every rank of a
 * decomposed run writes its own store file (one writer per rank —
 * the store is single-producer), and after the run the per-rank
 * parts are merged into one store by an iteration-sorted k-way
 * merge (ties in rank order, so equal-iteration records still read
 * like concatenated per-rank logs). Each part is iteration-sorted,
 * so the merged file is too: it keeps the footer's sorted flag,
 * and cursorAt/readRange/filtered queries binary-search its block
 * index like any single-rank store's.
 *
 * Failure semantics: the merge is policy-driven. MergePolicy::Fail
 * keeps the historical behavior (any unreadable part is fatal);
 * MergePolicy::Skip treats each part independently — a part that
 * fails to open is re-tried through the reader's salvage scan, and
 * only what genuinely decodes ends up in the merged store, with a
 * MergeReport saying exactly what was dropped. One dead rank no
 * longer destroys the whole campaign's output.
 */

#ifndef TDFE_PAR_STORE_MERGE_HH
#define TDFE_PAR_STORE_MERGE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "store/writer.hh"

namespace tdfe
{

class Communicator;
class Region;

/**
 * Per-rank store path: @p base itself for single-rank worlds,
 * otherwise "<base>.rk<rank>" so ranks of one world never collide.
 */
std::string rankStorePath(const std::string &base, int rank,
                          int world_size);

/** What mergeRankStores does with a part that cannot be read. */
enum class MergePolicy
{
    /** Any unreadable/mismatched part is fatal (strict default). */
    Fail,
    /** Salvage what decodes, skip the rest, report per part. */
    Skip,
};

/** Parse "fail" / "skip" (CLI plumbing). Fatal on other values. */
MergePolicy parseMergePolicy(const std::string &name);

/** Per-part outcome of a policy-driven merge. */
struct MergeReport
{
    struct Part
    {
        std::string path;
        /** Records merged from this part. */
        std::size_t records = 0;
        /** True when the part was recovered via the salvage scan
         *  instead of its footer. */
        bool salvaged = false;
        /** True when the part contributed nothing (unreadable or
         *  schema mismatch); @c detail says why. */
        bool skipped = false;
        std::string detail;
    };

    std::vector<Part> parts;

    /** @return parts that were skipped or salvaged (i.e. the merge
     *  was lossy somewhere). */
    std::size_t
    degradedParts() const
    {
        std::size_t n = 0;
        for (const Part &p : parts)
            if (p.skipped || p.salvaged)
                ++n;
        return n;
    }
};

/**
 * Merge the store files @p parts into @p out_path by iteration-
 * sorted k-way merge (ties toward the lower part index). All parts
 * must share one schema; records are re-encoded, so the merged
 * file uses @p options' block capacity — and stays iteration-
 * sorted (queryable by block index) as long as every part is.
 *
 * Under MergePolicy::Fail any unreadable part or schema mismatch is
 * fatal (and the output is never created — all parts are opened
 * first). Under MergePolicy::Skip a damaged part is salvaged
 * (sealed-block prefix) or, when nothing survives, skipped; the
 * per-part outcomes land in @p report when given, and skipped parts
 * are warned about. Fatal under both policies only when no part
 * yields a schema to write (nothing to merge at all).
 *
 * @return records in the merged store.
 */
std::size_t mergeRankStores(const std::vector<std::string> &parts,
                            const std::string &out_path,
                            const StoreOptions &options =
                                StoreOptions(),
                            MergePolicy policy = MergePolicy::Fail,
                            MergeReport *report = nullptr);

/**
 * App-harness helper: create this rank's store at
 * rankStorePath(@p base, rank, size) with @p coeff_count
 * coefficient columns and attach it as @p region's feature sink
 * (register every analysis first). @p comm may be null (single
 * rank). @p options carries async mode and the durability policy.
 */
std::unique_ptr<FeatureStoreWriter>
attachRankStore(Region &region, const std::string &base,
                std::size_t coeff_count, const StoreOptions &options,
                Communicator *comm);

/** Knobs of finishRankStore's merge step. */
struct RankMergeOptions
{
    /** How the rank-0 merge treats unreadable parts. */
    MergePolicy policy = MergePolicy::Fail;
    /** Keep the per-rank part files after a successful merge (the
     *  --store-keep-parts escape hatch; parts that failed to merge
     *  under Skip are always kept for post-mortem). */
    bool keepParts = false;
    /** Writer options of the merged output file (block capacity,
     *  durability, async). Callers pass the same options they gave
     *  attachRankStore so the merged store honors the run's
     *  --store-durability / --store-async flags instead of
     *  silently reverting to defaults. */
    StoreOptions storeOptions;
};

/**
 * Stitch per-attempt store segments of a crash/resume run (oldest
 * first) into one store at @p out_path. Each segment is one
 * attempt's output; crashed attempts leave footerless segments, so
 * every segment is opened through the salvage scan. Because a
 * resumed attempt restarts from its checkpoint, the tail of segment
 * k overlaps the head of segment k+1 — segment k contributes only
 * records with iteration strictly below segment k+1's first
 * recorded iteration, which makes the stitched store record-equal
 * to an uninterrupted run's (modulo wallTime, which is measured
 * per attempt). Unreadable segments are skipped with a warning;
 * fatal only when no segment yields a schema.
 *
 * @return records in the stitched store.
 */
std::size_t stitchSegmentStores(const std::vector<std::string> &parts,
                                const std::string &out_path,
                                const StoreOptions &options =
                                    StoreOptions());

/**
 * Counterpart of attachRankStore, for when the run (and every
 * region query — queries drain pending appends) is over: detach
 * the sink, finish this rank's part, and under a multi-rank
 * @p comm merge all parts into @p base on rank 0 (rank order),
 * with barriers so the merged store is complete before any rank
 * returns. Cleanly merged parts are removed unless @p merge_options
 * says to keep them; parts skipped under MergePolicy::Skip are
 * always left on disk (and reported) so a post-mortem can still
 * read them.
 *
 * @return bytes of this rank's part file (0 when this rank's
 *         writer degraded — see FeatureStoreWriter::finish()).
 */
std::size_t finishRankStore(Region &region,
                            std::unique_ptr<FeatureStoreWriter> store,
                            const std::string &base,
                            Communicator *comm,
                            const RankMergeOptions &merge_options =
                                RankMergeOptions());

} // namespace tdfe

#endif // TDFE_PAR_STORE_MERGE_HH
