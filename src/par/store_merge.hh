/**
 * @file
 * Rank-decomposed feature-store plumbing: every rank of a
 * decomposed run writes its own store file (one writer per rank —
 * the store is single-producer), and after the run the per-rank
 * parts are merged into one store in rank order, mirroring how MPI
 * codes concatenate per-rank logs. The merged file is a normal
 * store (tdfstool, reader, range queries all work); since the same
 * iterations appear once per rank, the reader detects the
 * non-monotone block index and range queries transparently fall
 * back to a sequential scan.
 */

#ifndef TDFE_PAR_STORE_MERGE_HH
#define TDFE_PAR_STORE_MERGE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "store/writer.hh"

namespace tdfe
{

class Communicator;
class Region;

/**
 * Per-rank store path: @p base itself for single-rank worlds,
 * otherwise "<base>.rk<rank>" so ranks of one world never collide.
 */
std::string rankStorePath(const std::string &base, int rank,
                          int world_size);

/**
 * Merge the store files @p parts (rank order) into @p out_path.
 * All parts must share one schema (fatal otherwise); records are
 * re-encoded, so the merged file uses @p options' block capacity.
 *
 * @return records in the merged store.
 */
std::size_t mergeRankStores(const std::vector<std::string> &parts,
                            const std::string &out_path,
                            const StoreOptions &options =
                                StoreOptions());

/**
 * App-harness helper: create this rank's store at
 * rankStorePath(@p base, rank, size) with @p coeff_count
 * coefficient columns and attach it as @p region's feature sink
 * (register every analysis first). @p comm may be null (single
 * rank).
 */
std::unique_ptr<FeatureStoreWriter>
attachRankStore(Region &region, const std::string &base,
                std::size_t coeff_count, bool async,
                Communicator *comm);

/**
 * Counterpart of attachRankStore, for when the run (and every
 * region query — queries drain pending appends) is over: detach
 * the sink, finish this rank's part, and under a multi-rank
 * @p comm merge all parts into @p base on rank 0 (rank order,
 * parts removed afterwards), with barriers so the merged store is
 * complete before any rank returns.
 *
 * @return bytes of this rank's part file.
 */
std::size_t finishRankStore(Region &region,
                            std::unique_ptr<FeatureStoreWriter> store,
                            const std::string &base,
                            Communicator *comm);

} // namespace tdfe

#endif // TDFE_PAR_STORE_MERGE_HH
