/**
 * @file
 * Abstract message-passing interface.
 *
 * The paper runs its applications under MPI and uses broadcasts to
 * distribute the current prediction, the rank holding the wave front,
 * and the stop flag (Sec. III-C). This repository has no MPI
 * installation, so the same call pattern is provided behind this
 * interface with two implementations: SerialComm (single rank) and
 * ThreadComm (std::thread-backed ranks with real synchronisation).
 *
 * Besides the blocking collectives the interface offers non-blocking
 * ones (iallreduce / iallreduceVec / ibcast) returning a CommRequest
 * that is completed lazily with test()/wait(). They follow MPI's
 * matching rule: every rank must post its non-blocking collectives in
 * the same order (they pair up by per-rank sequence number, not by
 * content), and the caller's buffers must stay valid until the
 * request has completed or been dropped. Results only ever land in
 * the caller's buffers from the caller's own thread, inside a
 * successful test() or a wait() — never asynchronously — so dropping
 * a request without completing it is always safe: the contribution
 * made at post time still completes the collective for the other
 * ranks, only this rank's output is never written.
 */

#ifndef TDFE_PAR_COMM_HH
#define TDFE_PAR_COMM_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace tdfe
{

/** Reduction operators for allreduce(). */
enum class ReduceOp
{
    Sum,
    Min,
    Max,
};

/**
 * Completion state of one in-flight non-blocking collective.
 * Implementations are provided by the concrete communicators;
 * CommRequest is the only user of this interface.
 */
class CommOp
{
  public:
    virtual ~CommOp() = default;

    /**
     * Poll for completion. @return true once the collective has
     * completed — the result has then been copied into the caller's
     * buffers. Idempotent: further calls keep returning true.
     */
    virtual bool test() = 0;

    /** Block until the collective completes (results landed). */
    virtual void wait() = 0;

    /**
     * Block up to @p seconds for completion. @return true once the
     * collective has completed (results landed), false on timeout —
     * the operation is then still outstanding and the caller owns
     * the degrade decision (typically: adopt the last known value
     * and drop the request). The default suits backends whose ops
     * cannot stall (they complete inline): it just waits.
     */
    virtual bool
    waitFor(double seconds)
    {
        (void)seconds;
        wait();
        return true;
    }
};

/**
 * Handle of one posted non-blocking collective. Value type; a
 * default-constructed (or reset) request counts as complete. Copies
 * share the same underlying operation, and completing any copy
 * completes them all. Requests must not outlive the communicator
 * that issued them.
 */
class CommRequest
{
  public:
    CommRequest() = default;

    /** Wrap implementation state (communicators only). */
    explicit CommRequest(std::shared_ptr<CommOp> op)
        : op(std::move(op))
    {
    }

    /** @return true while an operation is attached (it may already
     *  have completed; this does not poll). */
    bool valid() const { return static_cast<bool>(op); }

    /** Poll; @return true once complete (null request: true). */
    bool
    test()
    {
        return !op || op->test();
    }

    /** Block until complete (null request: no-op). */
    void
    wait()
    {
        if (op)
            op->wait();
    }

    /**
     * Block up to @p seconds; @return true once complete (null
     * request: true immediately). On false the request is still
     * attached — the comm-watchdog caller decides whether to keep
     * polling or degrade and reset().
     */
    bool
    waitFor(double seconds)
    {
        return !op || op->waitFor(seconds);
    }

    /** Detach from the operation (outstanding ops complete anyway). */
    void reset() { op.reset(); }

  private:
    std::shared_ptr<CommOp> op;
};

/**
 * Minimal communicator: the subset of MPI the paper's library and
 * the rank-decomposed solvers actually use.
 */
class Communicator
{
  public:
    virtual ~Communicator() = default;

    /** @return this rank's id in [0, size()). */
    virtual int rank() const = 0;

    /** @return number of ranks in the communicator. */
    virtual int size() const = 0;

    /** Block until every rank has entered the barrier. */
    virtual void barrier() = 0;

    /**
     * Broadcast @p count doubles from @p root to all ranks.
     * @p data is both input (on root) and output (elsewhere).
     */
    virtual void bcast(double *data, std::size_t count, int root) = 0;

    /** Reduce one double across ranks; every rank gets the result. */
    virtual double allreduce(double value, ReduceOp op) = 0;

    /**
     * Elementwise in-place reduction of @p count doubles across all
     * ranks (used to gather distributed probe lines: owners
     * contribute values, the rest contribute zeros, Sum merges).
     */
    virtual void allreduceVec(double *data, std::size_t count,
                              ReduceOp op) = 0;

    /**
     * Non-blocking allreduce of one double. The rank's contribution
     * is captured before the call returns; the reduced value is
     * written to @p *result (which must stay valid until then) when
     * the returned request first tests true or wait() returns. The
     * reduction combines contributions in rank order, so the result
     * is bitwise identical to the blocking allreduce().
     */
    virtual CommRequest iallreduce(double value, ReduceOp op,
                                   double *result) = 0;

    /**
     * Non-blocking elementwise in-place reduction of @p count
     * doubles. @p data is read (contribution) at post time and
     * overwritten with the reduced vector at completion; it must
     * stay valid until the request completes or is dropped. The
     * reduction folds contributions in rank order (deterministic;
     * note the blocking allreduceVec folds in arrival order, so the
     * two are only bitwise comparable for order-independent
     * reductions such as Min/Max or exact sums).
     */
    virtual CommRequest iallreduceVec(double *data, std::size_t count,
                                      ReduceOp op) = 0;

    /**
     * Non-blocking broadcast of @p count doubles from @p root. The
     * root's payload is captured at post time; every other rank's
     * @p data is overwritten at completion and must stay valid until
     * then (or until the request is dropped).
     */
    virtual CommRequest ibcast(double *data, std::size_t count,
                               int root) = 0;

    /**
     * Non-blocking enqueue of a message to @p dest: the payload is
     * copied into the destination mailbox before the call returns,
     * with no rendezvous — the send completes even if the receiver
     * never posts a matching recv before the world shuts down (it is
     * then reported as undelivered). Messages from one (src, dest)
     * pair with the same tag are delivered in send order (FIFO per
     * tag); ordering across different tags or different senders is
     * unspecified.
     */
    virtual void send(int dest, int tag,
                      const std::vector<double> &payload) = 0;

    /** Blocking receive of the next message from @p src with @p tag. */
    virtual std::vector<double> recv(int src, int tag) = 0;

    /** Convenience: broadcast a single double. */
    double
    bcastValue(double value, int root)
    {
        bcast(&value, 1, root);
        return value;
    }
};

} // namespace tdfe

#endif // TDFE_PAR_COMM_HH
