/**
 * @file
 * Abstract message-passing interface.
 *
 * The paper runs its applications under MPI and uses broadcasts to
 * distribute the current prediction, the rank holding the wave front,
 * and the stop flag (Sec. III-C). This repository has no MPI
 * installation, so the same call pattern is provided behind this
 * interface with two implementations: SerialComm (single rank) and
 * ThreadComm (std::thread-backed ranks with real synchronisation).
 */

#ifndef TDFE_PAR_COMM_HH
#define TDFE_PAR_COMM_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

/** Reduction operators for allreduce(). */
enum class ReduceOp
{
    Sum,
    Min,
    Max,
};

/**
 * Minimal communicator: the subset of MPI the paper's library and
 * the rank-decomposed solvers actually use.
 */
class Communicator
{
  public:
    virtual ~Communicator() = default;

    /** @return this rank's id in [0, size()). */
    virtual int rank() const = 0;

    /** @return number of ranks in the communicator. */
    virtual int size() const = 0;

    /** Block until every rank has entered the barrier. */
    virtual void barrier() = 0;

    /**
     * Broadcast @p count doubles from @p root to all ranks.
     * @p data is both input (on root) and output (elsewhere).
     */
    virtual void bcast(double *data, std::size_t count, int root) = 0;

    /** Reduce one double across ranks; every rank gets the result. */
    virtual double allreduce(double value, ReduceOp op) = 0;

    /**
     * Elementwise in-place reduction of @p count doubles across all
     * ranks (used to gather distributed probe lines: owners
     * contribute values, the rest contribute zeros, Sum merges).
     */
    virtual void allreduceVec(double *data, std::size_t count,
                              ReduceOp op) = 0;

    /** Non-blocking enqueue of a message to @p dest. */
    virtual void send(int dest, int tag,
                      const std::vector<double> &payload) = 0;

    /** Blocking receive of the next message from @p src with @p tag. */
    virtual std::vector<double> recv(int src, int tag) = 0;

    /** Convenience: broadcast a single double. */
    double
    bcastValue(double value, int root)
    {
        bcast(&value, 1, root);
        return value;
    }
};

} // namespace tdfe

#endif // TDFE_PAR_COMM_HH
