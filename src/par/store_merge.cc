#include "par/store_merge.hh"

#include <cstdio>

#include "base/logging.hh"
#include "core/region.hh"
#include "par/comm.hh"
#include "store/reader.hh"

namespace tdfe
{

std::string
rankStorePath(const std::string &base, int rank, int world_size)
{
    if (world_size <= 1)
        return base;
    return base + ".rk" + std::to_string(rank);
}

std::size_t
mergeRankStores(const std::vector<std::string> &parts,
                const std::string &out_path,
                const StoreOptions &options)
{
    TDFE_ASSERT(!parts.empty(), "nothing to merge");

    // Open every part before creating the output so a bad input
    // cannot leave a half-written merged file behind.
    std::vector<std::unique_ptr<FeatureStoreReader>> readers;
    for (const std::string &p : parts) {
        std::string error;
        auto r = FeatureStoreReader::open(p, &error);
        if (!r)
            TDFE_FATAL("cannot merge feature store: ", error);
        if (!readers.empty() &&
            r->schema() != readers.front()->schema()) {
            TDFE_FATAL("feature store schema mismatch merging ", p,
                       " (", r->schema().coeffCount, " vs ",
                       readers.front()->schema().coeffCount,
                       " coefficient columns)");
        }
        readers.push_back(std::move(r));
    }

    FeatureStoreWriter writer(out_path, readers.front()->schema(),
                              options);
    FeatureRecord rec;
    for (const auto &r : readers) {
        FeatureStoreReader::Cursor c = r->cursor();
        while (c.next(rec))
            writer.append(rec);
    }
    const std::size_t merged = writer.recordCount();
    writer.finish();
    return merged;
}

std::unique_ptr<FeatureStoreWriter>
attachRankStore(Region &region, const std::string &base,
                std::size_t coeff_count, bool async,
                Communicator *comm)
{
    StoreSchema schema;
    schema.coeffCount = coeff_count;
    StoreOptions options;
    options.async = async;
    auto store = std::make_unique<FeatureStoreWriter>(
        rankStorePath(base, comm ? comm->rank() : 0,
                      comm ? comm->size() : 1),
        schema, options);
    region.setFeatureStore(store.get());
    return store;
}

std::size_t
finishRankStore(Region &region,
                std::unique_ptr<FeatureStoreWriter> store,
                const std::string &base, Communicator *comm)
{
    TDFE_ASSERT(store, "finishRankStore needs an attached store");
    region.setFeatureStore(nullptr);
    const std::size_t bytes = store->finish();
    if (comm && comm->size() > 1) {
        // All parts on disk before rank 0 concatenates them; the
        // exit barrier keeps the merged file complete before any
        // rank returns to the caller.
        comm->barrier();
        if (comm->rank() == 0) {
            std::vector<std::string> parts;
            for (int r = 0; r < comm->size(); ++r)
                parts.push_back(
                    rankStorePath(base, r, comm->size()));
            mergeRankStores(parts, base);
            for (const std::string &p : parts)
                std::remove(p.c_str());
        }
        comm->barrier();
    }
    return bytes;
}

} // namespace tdfe
