#include "par/store_merge.hh"

#include <cstdio>
#include <limits>

#include "base/logging.hh"
#include "core/region.hh"
#include "par/comm.hh"
#include "store/reader.hh"

namespace tdfe
{

std::string
rankStorePath(const std::string &base, int rank, int world_size)
{
    if (world_size <= 1)
        return base;
    return base + ".rk" + std::to_string(rank);
}

MergePolicy
parseMergePolicy(const std::string &name)
{
    if (name == "fail")
        return MergePolicy::Fail;
    if (name == "skip")
        return MergePolicy::Skip;
    TDFE_FATAL("unknown store merge policy '", name,
               "' (expected fail or skip)");
}

std::size_t
mergeRankStores(const std::vector<std::string> &parts,
                const std::string &out_path,
                const StoreOptions &options, MergePolicy policy,
                MergeReport *report)
{
    TDFE_ASSERT(!parts.empty(), "nothing to merge");

    // Open every part before creating the output so a bad input
    // cannot leave a half-written merged file behind. Under Skip a
    // damaged part falls back to the salvage scan, and a part that
    // yields nothing (or the wrong schema) merges as zero records.
    std::vector<std::unique_ptr<FeatureStoreReader>> readers;
    MergeReport local_report;
    MergeReport &rep = report ? *report : local_report;
    rep.parts.clear();
    const StoreSchema *schema = nullptr;
    for (const std::string &p : parts) {
        MergeReport::Part part;
        part.path = p;
        std::string error;
        std::unique_ptr<FeatureStoreReader> r;
        if (policy == MergePolicy::Fail) {
            r = FeatureStoreReader::open(p, &error);
            if (!r)
                TDFE_FATAL("cannot merge feature store: ", error);
        } else {
            r = FeatureStoreReader::openOrSalvage(p, &error,
                                                  &part.salvaged);
            if (!r) {
                part.skipped = true;
                part.detail = error;
            }
        }
        if (r && schema && r->schema() != *schema) {
            if (policy == MergePolicy::Fail) {
                TDFE_FATAL("feature store schema mismatch merging ",
                           p, " (", r->schema().coeffCount, " vs ",
                           schema->coeffCount,
                           " coefficient columns)");
            }
            part.skipped = true;
            part.salvaged = false;
            part.detail = "schema mismatch (" +
                          std::to_string(r->schema().coeffCount) +
                          " vs " +
                          std::to_string(schema->coeffCount) +
                          " coefficient columns)";
            r.reset();
        }
        if (r) {
            if (!schema)
                schema = &r->schema();
            part.records = r->recordCount();
            if (part.salvaged) {
                part.detail = "salvaged " +
                              std::to_string(r->recordCount()) +
                              " records";
                TDFE_WARN("merge: part '", p, "' damaged; ",
                          part.detail);
            }
        } else {
            TDFE_WARN("merge: skipping part '", p, "': ",
                      part.detail);
        }
        readers.push_back(std::move(r));
        rep.parts.push_back(std::move(part));
    }
    if (!schema)
        TDFE_FATAL("cannot merge feature store: no readable part ",
                   "among ", parts.size(), " (first: ", parts.front(),
                   ")");

    // Iteration-sorted k-way merge: repeatedly emit the head record
    // with the smallest iteration, ties broken toward the lower
    // part (rank) index so equal-iteration records keep rank order.
    // Every part a rank writes is iteration-sorted, so the merged
    // store keeps the footer's sorted flag and stays binary-
    // searchable (cursorAt/readRange skip to the right blocks
    // instead of falling back to a sequential scan). A linear
    // min-scan over the heads is plenty: parts = world size, and
    // re-encoding each record dwarfs the scan.
    struct Head
    {
        FeatureStoreReader::Cursor cur;
        FeatureRecord rec;
        bool live;
        Head(FeatureStoreReader::Cursor c) : cur(std::move(c))
        {
            live = cur.next(rec);
        }
    };
    std::vector<Head> heads;
    for (const auto &r : readers)
        if (r)
            heads.emplace_back(r->cursor());

    FeatureStoreWriter writer(out_path, *schema, options);
    for (;;) {
        Head *best = nullptr;
        for (Head &h : heads)
            if (h.live &&
                (!best || h.rec.iteration < best->rec.iteration))
                best = &h;
        if (!best)
            break;
        writer.append(best->rec);
        best->live = best->cur.next(best->rec);
    }
    const std::size_t merged = writer.recordCount();
    if (writer.finish() == 0)
        TDFE_FATAL("cannot write merged feature store ", out_path,
                   ": ", writer.status().message);
    return merged;
}

std::size_t
stitchSegmentStores(const std::vector<std::string> &parts,
                    const std::string &out_path,
                    const StoreOptions &options)
{
    TDFE_ASSERT(!parts.empty(), "nothing to stitch");

    // Crashed attempts die without sealing their segment, so every
    // segment goes through the salvage path; a segment that decodes
    // nothing at all (e.g. the crash hit before the first block
    // sealed) is skipped, not fatal — the next attempt re-recorded
    // its records anyway.
    std::vector<std::unique_ptr<FeatureStoreReader>> readers;
    const StoreSchema *schema = nullptr;
    for (const std::string &p : parts) {
        std::string error;
        bool salvaged = false;
        std::unique_ptr<FeatureStoreReader> r =
            FeatureStoreReader::openOrSalvage(p, &error, &salvaged);
        if (!r) {
            TDFE_WARN("stitch: skipping segment '", p, "': ", error);
        } else if (schema && r->schema() != *schema) {
            TDFE_WARN("stitch: skipping segment '", p,
                      "': schema mismatch");
            r.reset();
        } else if (!schema) {
            schema = &r->schema();
        }
        readers.push_back(std::move(r));
    }
    if (!schema)
        TDFE_FATAL("cannot stitch feature store: no readable segment ",
                   "among ", parts.size(), " (first: ", parts.front(),
                   ")");

    // Segment k's cutoff = the smallest first iteration any later
    // segment recorded: everything from there on was re-recorded by
    // a resumed attempt, which is the authoritative copy. One
    // backward pass carries that minimum, so a readable-but-empty
    // segment (crash before its first block sealed) is transparent
    // — it neither resets the cutoff of the segments before it (the
    // old chaining bug, which duplicated the overlap) nor blocks a
    // later segment's cutoff from reaching them.
    const long no_cutoff = std::numeric_limits<long>::max();
    std::vector<long> cutoff(readers.size(), no_cutoff);
    FeatureRecord rec;
    long next_first = no_cutoff;
    for (std::size_t i = readers.size(); i-- > 0;) {
        if (!readers[i])
            continue;
        cutoff[i] = next_first;
        FeatureStoreReader::Cursor c = readers[i]->cursor();
        if (c.next(rec) && rec.iteration < next_first)
            next_first = rec.iteration;
    }

    FeatureStoreWriter writer(out_path, *schema, options);
    for (std::size_t i = 0; i < readers.size(); ++i) {
        if (!readers[i])
            continue;
        FeatureStoreReader::Cursor c = readers[i]->cursor();
        while (c.next(rec)) {
            if (rec.iteration >= cutoff[i])
                break;
            writer.append(rec);
        }
    }
    const std::size_t stitched = writer.recordCount();
    if (writer.finish() == 0)
        TDFE_FATAL("cannot write stitched feature store ", out_path,
                   ": ", writer.status().message);
    return stitched;
}

std::unique_ptr<FeatureStoreWriter>
attachRankStore(Region &region, const std::string &base,
                std::size_t coeff_count, const StoreOptions &options,
                Communicator *comm)
{
    StoreSchema schema;
    schema.coeffCount = coeff_count;
    auto store = std::make_unique<FeatureStoreWriter>(
        rankStorePath(base, comm ? comm->rank() : 0,
                      comm ? comm->size() : 1),
        schema, options);
    region.setFeatureStore(store.get());
    return store;
}

std::size_t
finishRankStore(Region &region,
                std::unique_ptr<FeatureStoreWriter> store,
                const std::string &base, Communicator *comm,
                const RankMergeOptions &merge_options)
{
    TDFE_ASSERT(store, "finishRankStore needs an attached store");
    region.setFeatureStore(nullptr);
    const std::size_t bytes = store->finish();
    if (comm && comm->size() > 1) {
        // All parts on disk before rank 0 concatenates them; the
        // exit barrier keeps the merged file complete before any
        // rank returns to the caller.
        comm->barrier();
        if (comm->rank() == 0) {
            std::vector<std::string> parts;
            for (int r = 0; r < comm->size(); ++r)
                parts.push_back(
                    rankStorePath(base, r, comm->size()));
            MergeReport report;
            mergeRankStores(parts, base, merge_options.storeOptions,
                            merge_options.policy, &report);
            if (!merge_options.keepParts) {
                // Only parts that merged cleanly are disposable;
                // skipped or salvaged ones are the sole surviving
                // evidence of what that rank recorded.
                for (const MergeReport::Part &p : report.parts) {
                    if (p.skipped || p.salvaged) {
                        TDFE_INFORM("keeping part '", p.path,
                                    "' for post-mortem (",
                                    p.skipped ? "skipped"
                                              : "salvaged",
                                    ")");
                        continue;
                    }
                    std::remove(p.path.c_str());
                }
            }
        }
        comm->barrier();
    }
    return bytes;
}

} // namespace tdfe
