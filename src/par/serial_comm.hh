/**
 * @file
 * Single-rank communicator: every operation is a no-op or an
 * identity. Used whenever an application runs without decomposition.
 */

#ifndef TDFE_PAR_SERIAL_COMM_HH
#define TDFE_PAR_SERIAL_COMM_HH

#include <deque>
#include <map>

#include "par/comm.hh"

namespace tdfe
{

/** Trivial Communicator for one rank (self-sends still work). */
class SerialComm : public Communicator
{
  public:
    int rank() const override { return 0; }
    int size() const override { return 1; }
    void barrier() override {}
    void bcast(double *data, std::size_t count, int root) override;
    double allreduce(double value, ReduceOp op) override;
    void allreduceVec(double *data, std::size_t count,
                      ReduceOp op) override;
    CommRequest iallreduce(double value, ReduceOp op,
                           double *result) override;
    CommRequest iallreduceVec(double *data, std::size_t count,
                              ReduceOp op) override;
    CommRequest ibcast(double *data, std::size_t count,
                       int root) override;
    void send(int dest, int tag,
              const std::vector<double> &payload) override;
    std::vector<double> recv(int src, int tag) override;

  private:
    /** Self-send queue keyed by tag. */
    std::map<int, std::deque<std::vector<double>>> loopback;
};

} // namespace tdfe

#endif // TDFE_PAR_SERIAL_COMM_HH
