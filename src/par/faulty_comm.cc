#include "par/faulty_comm.hh"

#include <memory>
#include <utility>

#include "base/logging.hh"

namespace tdfe
{

namespace
{

/**
 * The swallowed post of a silenced rank: never completes. wait()
 * fatals instead of hanging — a deliberate tripwire: any code path
 * that can face a silent peer must go through the watchdog
 * (waitFor) and own a degrade decision, never an unbounded wait.
 */
class SilentOp : public CommOp
{
  public:
    bool test() override { return false; }

    void
    wait() override
    {
        TDFE_FATAL("wait() on a silenced rank's collective would "
                   "hang forever; use waitFor() and degrade");
    }

    bool
    waitFor(double seconds) override
    {
        (void)seconds;
        return false;
    }
};

/**
 * Slow-but-alive: holds the completion back for a fixed number of
 * polls. Only test() is throttled — a real timed wait outlasts a
 * bounded delay, so waitFor()/wait() see the true completion; this
 * is what lets the watchdog distinguish slow from dead.
 */
class DelayedOp : public CommOp
{
  public:
    DelayedOp(CommRequest inner, int polls)
        : inner_(std::move(inner)), held_(polls)
    {
    }

    bool
    test() override
    {
        if (held_ > 0) {
            --held_;
            return false;
        }
        return inner_.test();
    }

    void
    wait() override
    {
        held_ = 0;
        inner_.wait();
    }

    bool
    waitFor(double seconds) override
    {
        held_ = 0;
        return inner_.waitFor(seconds);
    }

  private:
    CommRequest inner_;
    int held_;
};

} // namespace

bool
FaultyComm::swallowNext()
{
    const int op_index = posted_++;
    if (op_index >= plan_.silentAfterOp) {
        silent_ = true;
        return true;
    }
    return false;
}

CommRequest
FaultyComm::decorate(CommRequest inner_request)
{
    // posted_ was bumped by swallowNext(); the op that just posted
    // has index posted_ - 1.
    if (posted_ - 1 >= plan_.delayAfterOp && plan_.delayPolls > 0) {
        return CommRequest(std::make_shared<DelayedOp>(
            std::move(inner_request), plan_.delayPolls));
    }
    return inner_request;
}

CommRequest
FaultyComm::iallreduce(double value, ReduceOp op, double *result)
{
    if (swallowNext())
        return CommRequest(std::make_shared<SilentOp>());
    return decorate(inner_.iallreduce(value, op, result));
}

CommRequest
FaultyComm::iallreduceVec(double *data, std::size_t count,
                          ReduceOp op)
{
    if (swallowNext())
        return CommRequest(std::make_shared<SilentOp>());
    return decorate(inner_.iallreduceVec(data, count, op));
}

CommRequest
FaultyComm::ibcast(double *data, std::size_t count, int root)
{
    if (swallowNext())
        return CommRequest(std::make_shared<SilentOp>());
    return decorate(inner_.ibcast(data, count, root));
}

} // namespace tdfe
