#include "par/thread_comm.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "base/logging.hh"

namespace tdfe
{

ThreadCommWorld::ThreadCommWorld(int nranks) : nRanks(nranks)
{
    TDFE_ASSERT(nranks > 0, "need at least one rank");
    bcastBuffer.resize(1, 0.0);
    reduceSlots.resize(static_cast<std::size_t>(nranks), 0.0);
}

void
ThreadCommWorld::barrier()
{
    std::unique_lock<std::mutex> lock(mtx);
    const std::uint64_t my_generation = generation;
    if (++arrived == nRanks) {
        arrived = 0;
        ++generation;
        cv.notify_all();
    } else {
        cv.wait(lock, [&] { return generation != my_generation; });
    }
}

void
ThreadCommWorld::run(const std::function<void(Communicator &)> &body)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nRanks));
    for (int r = 0; r < nRanks; ++r) {
        threads.emplace_back([this, r, &body] {
            ThreadCommRank comm(*this, r);
            body(comm);
        });
    }
    for (auto &t : threads)
        t.join();

    TDFE_ASSERT(arrived == 0, "ranks left a barrier half-entered");
    if (!nbOps.empty()) {
        TDFE_WARN(nbOps.size(), " non-blocking collective(s) were "
                  "never completed by every rank (posted on some "
                  "ranks only); clearing them");
        nbOps.clear();
    }
    for (const auto &[key, queue] : mailboxes) {
        if (!queue.empty()) {
            TDFE_WARN("undelivered messages remain from rank ",
                      std::get<0>(key), " to rank ", std::get<1>(key),
                      " (tag ", std::get<2>(key), ")");
        }
    }
}

ThreadCommRank::ThreadCommRank(ThreadCommWorld &world, int rank)
    : world(world), myRank(rank)
{
}

namespace
{

/** Fold @p v into @p acc with @p op. */
inline double
reduceOne(double acc, double v, ReduceOp op)
{
    switch (op) {
      case ReduceOp::Sum:
        return acc + v;
      case ReduceOp::Min:
        return std::min(acc, v);
      case ReduceOp::Max:
        return std::max(acc, v);
    }
    return acc;
}

} // namespace

/**
 * Per-rank view of one posted collective: completion is observed —
 * and the result copied into this rank's output buffer — only from
 * this rank's own test()/wait() calls.
 */
class ThreadNbOp : public CommOp
{
  public:
    ThreadNbOp(ThreadCommWorld &world,
               std::shared_ptr<NbCollective> op, double *out)
        : world(world), op(std::move(op)), out(out)
    {
    }

    bool
    test() override
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        if (!op->complete)
            return false;
        copyOut();
        return true;
    }

    void
    wait() override
    {
        std::unique_lock<std::mutex> lock(world.mtx);
        world.nbCv.wait(lock, [&] { return op->complete; });
        copyOut();
    }

    bool
    waitFor(double seconds) override
    {
        std::unique_lock<std::mutex> lock(world.mtx);
        const bool done = world.nbCv.wait_for(
            lock,
            std::chrono::duration<double>(std::max(seconds, 0.0)),
            [&] { return op->complete; });
        if (!done)
            return false; // timed out: no result, buffers untouched
        copyOut();
        return true;
    }

  private:
    /** Idempotent: the result is immutable once complete. */
    void
    copyOut()
    {
        if (out)
            std::copy(op->result.begin(), op->result.end(), out);
    }

    ThreadCommWorld &world;
    std::shared_ptr<NbCollective> op;
    double *out;
};

CommRequest
ThreadCommRank::postCollective(NbCollective::Kind kind,
                               const double *contribution,
                               std::size_t count, ReduceOp op,
                               int root, double *out)
{
    const std::uint64_t seq = nbSeq++;
    std::shared_ptr<NbCollective> c;
    bool completed = false;
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        auto &slot = world.nbOps[seq];
        if (!slot) {
            slot = std::make_shared<NbCollective>();
            slot->kind = kind;
            slot->op = op;
            slot->count = count;
            slot->root = root;
            slot->parts.resize(
                static_cast<std::size_t>(world.nRanks));
        }
        c = slot;
        TDFE_ASSERT(c->kind == kind && c->count == count &&
                        c->root == root && c->op == op,
                    "non-blocking collective mismatch across ranks "
                    "(slot ", seq, "): every rank must post the same "
                    "operations in the same order");

        if (contribution) {
            c->parts[static_cast<std::size_t>(myRank)].assign(
                contribution, contribution + count);
        }
        if (++c->contributions == world.nRanks) {
            // Last contributor completes the op: reduce the parts in
            // rank order (deterministic; matches the blocking
            // scalar allreduce bitwise) and retire the slot —
            // nobody will look it up again.
            if (kind == NbCollective::Kind::Bcast) {
                c->result =
                    c->parts[static_cast<std::size_t>(c->root)];
            } else {
                c->result = c->parts[0];
                for (int r = 1; r < world.nRanks; ++r) {
                    const auto &part =
                        c->parts[static_cast<std::size_t>(r)];
                    for (std::size_t i = 0; i < count; ++i)
                        c->result[i] = reduceOne(c->result[i],
                                                 part[i], c->op);
                }
            }
            c->parts.clear();
            c->complete = true;
            world.nbOps.erase(seq);
            completed = true;
        }
    }
    if (completed)
        world.nbCv.notify_all();
    return CommRequest(
        std::make_shared<ThreadNbOp>(world, std::move(c), out));
}

CommRequest
ThreadCommRank::iallreduce(double value, ReduceOp op, double *result)
{
    return postCollective(NbCollective::Kind::Allreduce, &value, 1,
                          op, 0, result);
}

CommRequest
ThreadCommRank::iallreduceVec(double *data, std::size_t count,
                              ReduceOp op)
{
    return postCollective(NbCollective::Kind::AllreduceVec, data,
                          count, op, 0, data);
}

CommRequest
ThreadCommRank::ibcast(double *data, std::size_t count, int root)
{
    TDFE_ASSERT(root >= 0 && root < size(),
                "ibcast root out of range");
    // Only the root's payload matters; other ranks contribute just
    // their arrival and receive the payload into data at completion.
    return postCollective(NbCollective::Kind::Bcast,
                          myRank == root ? data : nullptr, count,
                          ReduceOp::Sum, root, data);
}

void
ThreadCommRank::bcast(double *data, std::size_t count, int root)
{
    TDFE_ASSERT(root >= 0 && root < size(), "bcast root out of range");

    // Root publishes under the lock, then a barrier releases the
    // readers; the trailing barrier keeps the buffer stable until
    // every rank has copied it out.
    if (myRank == root) {
        std::lock_guard<std::mutex> lock(world.mtx);
        world.bcastBuffer.assign(data, data + count);
    }
    world.barrier();
    if (myRank != root) {
        std::lock_guard<std::mutex> lock(world.mtx);
        TDFE_ASSERT(world.bcastBuffer.size() == count,
                    "bcast count mismatch across ranks");
        std::copy(world.bcastBuffer.begin(), world.bcastBuffer.end(),
                  data);
    }
    world.barrier();
}

double
ThreadCommRank::allreduce(double value, ReduceOp op)
{
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        world.reduceSlots[static_cast<std::size_t>(myRank)] = value;
    }
    world.barrier();

    double result;
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        result = world.reduceSlots[0];
        for (int r = 1; r < size(); ++r) {
            const double v =
                world.reduceSlots[static_cast<std::size_t>(r)];
            switch (op) {
              case ReduceOp::Sum:
                result += v;
                break;
              case ReduceOp::Min:
                result = std::min(result, v);
                break;
              case ReduceOp::Max:
                result = std::max(result, v);
                break;
            }
        }
    }
    world.barrier();
    return result;
}

void
ThreadCommRank::allreduceVec(double *data, std::size_t count,
                             ReduceOp op)
{
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        // The previous round's contributors counter resets when the
        // first rank of a new round arrives; barrier #2 of the old
        // round guarantees nobody is still reading vecSlot.
        if (world.vecContributors == world.nRanks)
            world.vecContributors = 0;
        if (world.vecContributors == 0) {
            world.vecSlot.assign(data, data + count);
        } else {
            TDFE_ASSERT(world.vecSlot.size() == count,
                        "allreduceVec count mismatch across ranks");
            for (std::size_t i = 0; i < count; ++i) {
                switch (op) {
                  case ReduceOp::Sum:
                    world.vecSlot[i] += data[i];
                    break;
                  case ReduceOp::Min:
                    world.vecSlot[i] =
                        std::min(world.vecSlot[i], data[i]);
                    break;
                  case ReduceOp::Max:
                    world.vecSlot[i] =
                        std::max(world.vecSlot[i], data[i]);
                    break;
                }
            }
        }
        ++world.vecContributors;
    }
    world.barrier();
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        std::copy(world.vecSlot.begin(), world.vecSlot.end(), data);
    }
    world.barrier();
}

void
ThreadCommRank::send(int dest, int tag,
                     const std::vector<double> &payload)
{
    TDFE_ASSERT(dest >= 0 && dest < size(), "send dest out of range");
    {
        std::lock_guard<std::mutex> lock(world.mtx);
        world.mailboxes[{myRank, dest, tag}].push_back(payload);
    }
    world.mailCv.notify_all();
}

std::vector<double>
ThreadCommRank::recv(int src, int tag)
{
    TDFE_ASSERT(src >= 0 && src < size(), "recv src out of range");
    std::unique_lock<std::mutex> lock(world.mtx);
    auto key = std::make_tuple(src, myRank, tag);
    world.mailCv.wait(lock, [&] {
        auto it = world.mailboxes.find(key);
        return it != world.mailboxes.end() && !it->second.empty();
    });
    auto &queue = world.mailboxes[key];
    std::vector<double> out = std::move(queue.front());
    queue.pop_front();
    return out;
}

} // namespace tdfe
