/**
 * @file
 * Deterministic fault injection for the comm layer, the par-side
 * sibling of store::FaultyFile: a decorator over any Communicator
 * that makes a rank's *non-blocking* collectives misbehave in the
 * two ways a watchdog must distinguish — slow (completions held back
 * for a bounded number of polls, the watchdog must NOT fire) and
 * dead (the rank stops contributing entirely, peers' requests never
 * complete and the watchdog must degrade instead of hanging).
 *
 * Faults target the non-blocking path only. The blocking
 * collectives the solvers themselves use (timestep allreduce, probe
 * gather) pass through untouched: the scenario modeled is a wedged
 * analysis/stop protocol on one rank, not a dead node — exactly the
 * place the Region's overlapped stop protocol has to degrade
 * gracefully while the simulation keeps stepping.
 *
 * Plans are counted in posted non-blocking operations (a
 * deterministic, content-independent clock), so a test can silence a
 * rank at exactly the Nth collective of a run, reproducibly.
 */

#ifndef TDFE_PAR_FAULTY_COMM_HH
#define TDFE_PAR_FAULTY_COMM_HH

#include <climits>
#include <cstddef>
#include <vector>

#include "par/comm.hh"

namespace tdfe
{

/** Deterministic misbehaviour plan for one rank's comm. */
struct CommFaultPlan
{
    /**
     * The rank goes permanently silent starting with its Nth posted
     * non-blocking collective (0-based): that post and all later
     * ones are swallowed — never delivered to the inner comm — so
     * peers' matching collectives never complete and this rank's own
     * requests poll false forever. INT_MAX: never.
     */
    int silentAfterOp = INT_MAX;

    /**
     * Completions are delayed starting with the Nth posted
     * non-blocking collective: the first delayPolls polls
     * (test()/waitFor() calls) on such a request report incomplete
     * even when the inner operation has completed. The operation
     * itself is posted normally, so nothing is lost — just late.
     * INT_MAX: never.
     */
    int delayAfterOp = INT_MAX;

    /** Polls held back per delayed request. */
    int delayPolls = 0;
};

/**
 * Communicator decorator applying a CommFaultPlan to the
 * non-blocking collectives; everything else forwards to the inner
 * comm. The inner communicator must outlive the decorator.
 */
class FaultyComm final : public Communicator
{
  public:
    FaultyComm(Communicator &inner, CommFaultPlan plan)
        : inner_(inner), plan_(plan)
    {
    }

    int rank() const override { return inner_.rank(); }
    int size() const override { return inner_.size(); }
    void barrier() override { inner_.barrier(); }

    void
    bcast(double *data, std::size_t count, int root) override
    {
        inner_.bcast(data, count, root);
    }

    double
    allreduce(double value, ReduceOp op) override
    {
        return inner_.allreduce(value, op);
    }

    void
    allreduceVec(double *data, std::size_t count,
                 ReduceOp op) override
    {
        inner_.allreduceVec(data, count, op);
    }

    CommRequest iallreduce(double value, ReduceOp op,
                           double *result) override;
    CommRequest iallreduceVec(double *data, std::size_t count,
                              ReduceOp op) override;
    CommRequest ibcast(double *data, std::size_t count,
                       int root) override;

    void
    send(int dest, int tag,
         const std::vector<double> &payload) override
    {
        inner_.send(dest, tag, payload);
    }

    std::vector<double>
    recv(int src, int tag) override
    {
        return inner_.recv(src, tag);
    }

    /** Non-blocking collectives posted through this decorator. */
    int postedOps() const { return posted_; }

    /** @return true once a post has been swallowed (rank silent). */
    bool wentSilent() const { return silent_; }

  private:
    /** Classify the next post and bump the op clock. */
    CommRequest decorate(CommRequest inner_request);
    bool swallowNext();

    Communicator &inner_;
    CommFaultPlan plan_;
    int posted_ = 0;
    bool silent_ = false;
};

} // namespace tdfe

#endif // TDFE_PAR_FAULTY_COMM_HH
