#include "stats/ols.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "stats/matrix.hh"

namespace tdfe
{

OlsFit
fitOls(const std::vector<std::vector<double>> &xs,
       const std::vector<double> &ys, double ridge)
{
    TDFE_ASSERT(!xs.empty(), "OLS needs at least one row");
    TDFE_ASSERT(xs.size() == ys.size(), "row/target count mismatch");

    const std::size_t dims = xs.front().size();
    const std::size_t n = xs.size();

    // Design matrix with a leading column of ones for the intercept,
    // filled row-at-a-time through the raw-row interface.
    Matrix design(n, dims + 1);
    for (std::size_t r = 0; r < n; ++r) {
        TDFE_ASSERT(xs[r].size() == dims, "ragged OLS rows");
        double *row = design.rowPtr(r);
        row[0] = 1.0;
        const double *src = xs[r].data();
        for (std::size_t c = 0; c < dims; ++c)
            row[c + 1] = src[c];
    }

    Matrix gram(dims + 1, dims + 1);
    design.gramInto(gram);
    gram.addDiagonal(ridge);
    std::vector<double> rhs(dims + 1, 0.0);
    design.multiplyTransposedInto(ys.data(), rhs.data());

    OlsFit fit;
    fit.coeffs.assign(dims + 1, 0.0);
    std::vector<double> scratch;
    gram.solveSpdInto(rhs.data(), fit.coeffs.data(), scratch);

    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r)
        acc += sqr(evalLinear(fit.coeffs, xs[r]) - ys[r]);
    fit.trainRmse = std::sqrt(acc / static_cast<double>(n));
    return fit;
}

double
evalLinear(const std::vector<double> &coeffs,
           const std::vector<double> &x)
{
    TDFE_ASSERT(coeffs.size() == x.size() + 1,
                "coefficient/feature size mismatch");
    return evalLinear(coeffs.data(), x.size(), x.data());
}

double
evalLinear(const double *coeffs, std::size_t dims, const double *x)
{
    double acc = coeffs[0];
    for (std::size_t i = 0; i < dims; ++i)
        acc += coeffs[i + 1] * x[i];
    return acc;
}

} // namespace tdfe
