#include "stats/metrics.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/math_util.hh"

namespace tdfe
{

namespace
{

void
checkSizes(const std::vector<double> &a, const std::vector<double> &b)
{
    TDFE_ASSERT(a.size() == b.size(),
                "series size mismatch: ", a.size(), " vs ", b.size());
    TDFE_ASSERT(!a.empty(), "metrics need at least one sample");
}

} // namespace

double
rmse(const std::vector<double> &predicted,
     const std::vector<double> &actual)
{
    checkSizes(predicted, actual);
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        acc += sqr(predicted[i] - actual[i]);
    return std::sqrt(acc / static_cast<double>(actual.size()));
}

double
mape(const std::vector<double> &predicted,
     const std::vector<double> &actual, double floor)
{
    checkSizes(predicted, actual);
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double denom = std::max(std::abs(actual[i]), floor);
        acc += std::abs(predicted[i] - actual[i]) / denom;
    }
    return acc / static_cast<double>(actual.size());
}

double
errorRatePct(const std::vector<double> &predicted,
             const std::vector<double> &actual)
{
    checkSizes(predicted, actual);
    double abs_err = 0.0;
    double scale = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        abs_err += std::abs(predicted[i] - actual[i]);
        scale += std::abs(actual[i]);
    }
    const double n = static_cast<double>(actual.size());
    const double denom = std::max(scale / n, 1e-12);
    return 100.0 * (abs_err / n) / denom;
}

double
r2Score(const std::vector<double> &predicted,
        const std::vector<double> &actual)
{
    checkSizes(predicted, actual);
    double mean = 0.0;
    for (double v : actual)
        mean += v;
    mean /= static_cast<double>(actual.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_res += sqr(actual[i] - predicted[i]);
        ss_tot += sqr(actual[i] - mean);
    }
    if (ss_tot <= 0.0)
        return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
maxAbsError(const std::vector<double> &predicted,
            const std::vector<double> &actual)
{
    checkSizes(predicted, actual);
    double worst = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        worst = std::max(worst, std::abs(predicted[i] - actual[i]));
    return worst;
}

} // namespace tdfe
