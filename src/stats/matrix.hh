/**
 * @file
 * Small dense matrix with the two factorizations the library needs:
 * Cholesky (for OLS normal equations) and matrix-vector products.
 * AR model orders are tiny (n <= ~32) so no external BLAS is needed.
 *
 * Hot callers use the raw-row interface (rowPtr/gramInto/
 * solveSpdInto) which reuses caller-owned scratch; the returning
 * variants remain for tests and offline code.
 */

#ifndef TDFE_STATS_MATRIX_HH
#define TDFE_STATS_MATRIX_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** @return identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Element access (bounds-checked in debug via assert). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Raw pointer to row @p r (cols() contiguous doubles). @{ */
    double *rowPtr(std::size_t r);
    const double *rowPtr(std::size_t r) const;
    /** @} */

    /** Raw row-major storage (rows()*cols() doubles). @{ */
    double *data() { return store.data(); }
    const double *data() const { return store.data(); }
    /** @} */

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    /** @return this * v. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /** @return transpose(this) * v. */
    std::vector<double>
    multiplyTransposed(const std::vector<double> &v) const;

    /** transpose(this) * v written into caller storage (cols()). */
    void multiplyTransposedInto(const double *v, double *out) const;

    /** @return transpose(this) * this (Gram matrix). */
    Matrix gram() const;

    /**
     * Accumulate transpose(this) * this into @p g (a cols() x cols()
     * matrix the caller owns and reuses between solves). @p g is
     * zeroed first; the row-by-row accumulation order matches
     * gram(), so results are bitwise identical.
     */
    void gramInto(Matrix &g) const;

    /** Add @p value to every diagonal entry (ridge regularizer). */
    void addDiagonal(double value);

    /**
     * Solve this * x = b for symmetric positive-definite `this`
     * using an in-place Cholesky factorization of a copy.
     *
     * @return the solution vector; panics if the matrix is not SPD
     * (callers regularize first).
     */
    std::vector<double> solveSpd(const std::vector<double> &b) const;

    /**
     * Allocation-free SPD solve: factorize into @p scratch (resized
     * to n*n + n once, then reused across calls) and write the
     * solution into @p x (n entries). @p x may fully alias @p b —
     * b is consumed before x is written — but must not partially
     * overlap it. Same arithmetic as solveSpd().
     */
    void solveSpdInto(const double *b, double *x,
                      std::vector<double> &scratch) const;

  private:
    std::size_t nRows;
    std::size_t nCols;
    std::vector<double> store;
};

} // namespace tdfe

#endif // TDFE_STATS_MATRIX_HH
