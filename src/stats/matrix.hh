/**
 * @file
 * Small dense matrix with the two factorizations the library needs:
 * Cholesky (for OLS normal equations) and matrix-vector products.
 * AR model orders are tiny (n <= ~32) so no external BLAS is needed.
 */

#ifndef TDFE_STATS_MATRIX_HH
#define TDFE_STATS_MATRIX_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** @return identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Element access (bounds-checked in debug via assert). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    /** @return this * v. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /** @return transpose(this) * v. */
    std::vector<double>
    multiplyTransposed(const std::vector<double> &v) const;

    /** @return transpose(this) * this (Gram matrix). */
    Matrix gram() const;

    /** Add @p value to every diagonal entry (ridge regularizer). */
    void addDiagonal(double value);

    /**
     * Solve this * x = b for symmetric positive-definite `this`
     * using an in-place Cholesky factorization of a copy.
     *
     * @return the solution vector; panics if the matrix is not SPD
     * (callers regularize first).
     */
    std::vector<double> solveSpd(const std::vector<double> &b) const;

  private:
    std::size_t nRows;
    std::size_t nCols;
    std::vector<double> data;
};

} // namespace tdfe

#endif // TDFE_STATS_MATRIX_HH
