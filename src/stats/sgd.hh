/**
 * @file
 * Gradient-descent optimizer for the linear AR model (paper Sec.
 * III-A: "optimization methods such as gradient descent are utilized
 * during training to minimize prediction error").
 */

#ifndef TDFE_STATS_SGD_HH
#define TDFE_STATS_SGD_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

class BinaryReader;
class BinaryWriter;
class PackedBatch;

/** Tunables for the gradient-descent training rounds. */
struct SgdConfig
{
    /** Step size in normalized feature space. */
    double learningRate = 0.05;
    /** Classical momentum factor (0 disables momentum). */
    double momentum = 0.9;
    /** L2 penalty on the slope coefficients (not the intercept). */
    double l2 = 1e-6;
    /** Full passes over each mini-batch per training round. */
    std::size_t epochsPerBatch = 8;
    /**
     * Gradient L2-norm clip (0 disables). In-situ training sees
     * regime changes (a shock or detonation arriving): the first
     * batch after one is normalized with the stale running scale
     * and produces an enormous gradient; clipping keeps one such
     * batch from destroying the coefficients.
     */
    double gradClip = 10.0;
};

/**
 * Plain batch gradient descent with momentum over mean-squared error
 * of a linear model. Operates on intercept-first coefficient vectors.
 */
class SgdOptimizer
{
  public:
    /**
     * @param dims Feature dimensions (coefficients = dims + 1).
     * @param config Optimizer tunables.
     */
    SgdOptimizer(std::size_t dims, const SgdConfig &config);

    /**
     * Run config.epochsPerBatch gradient steps over @p batch,
     * updating @p coeffs in place.
     *
     * @return mean-squared error over the batch *before* the first
     * update (used as the convergence signal: it measures how well
     * the model trained on past batches predicts fresh data).
     */
    double trainRound(std::vector<double> &coeffs,
                      const PackedBatch &batch);

    /** @return total gradient steps taken. */
    std::size_t steps() const { return stepCount; }

    /** Checkpoint the momentum state. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    /**
     * MSE and gradient of the batch at the given coefficients.
     * One fused stride-1 pass over the packed design matrix: each
     * row is read once (prediction dot + gradient axpy on the same
     * hot row pointer).
     */
    double gradient(const std::vector<double> &coeffs,
                    const PackedBatch &batch,
                    std::vector<double> &grad) const;

    SgdConfig cfg;
    std::vector<double> velocity;
    /** Gradient scratch reused across rounds: the training hot path
     *  must not allocate per mini-batch. */
    std::vector<double> gradScratch;
    std::size_t stepCount = 0;
};

} // namespace tdfe

#endif // TDFE_STATS_SGD_HH
