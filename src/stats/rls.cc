#include "stats/rls.hh"

#include "base/serial.hh"

#include <cmath>

#include "base/logging.hh"
#include "stats/minibatch.hh"
#include "stats/ols.hh"

namespace tdfe
{

RlsEstimator::RlsEstimator(std::size_t dims, const RlsConfig &config)
    : cfg(config), nDims(dims)
{
    TDFE_ASSERT(cfg.forgetting > 0.0 && cfg.forgetting <= 1.0,
                "RLS forgetting factor must be in (0, 1]");
    TDFE_ASSERT(cfg.delta > 0.0, "RLS prior scale must be positive");
    const std::size_t n = nDims + 1;
    phi.assign(n, 0.0);
    gain.assign(n, 0.0);
    pPhi.assign(n, 0.0);
    reset();
}

void
RlsEstimator::reset()
{
    const std::size_t n = nDims + 1;
    p.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        p[i * n + i] = cfg.delta;
}

double
RlsEstimator::update(std::vector<double> &coeffs,
                     const std::vector<double> &x, double y)
{
    TDFE_ASSERT(x.size() == nDims, "feature size mismatch");
    return updateRow(coeffs, x.data(), y);
}

double
RlsEstimator::updateRow(std::vector<double> &coeffs, const double *x,
                        double y)
{
    const std::size_t n = nDims + 1;
    TDFE_ASSERT(coeffs.size() == n, "coefficient size mismatch");

    double *__restrict ph = phi.data();
    double *__restrict pp = pPhi.data();
    double *__restrict k = gain.data();
    double *__restrict c = coeffs.data();

    ph[0] = 1.0;
    for (std::size_t i = 0; i < nDims; ++i)
        ph[i + 1] = x[i];

    // pPhi = P * phi  (P is symmetric).
    double denom = cfg.forgetting;
    for (std::size_t r = 0; r < n; ++r) {
        double acc = 0.0;
        const double *__restrict row = p.data() + r * n;
        for (std::size_t col = 0; col < n; ++col)
            acc += row[col] * ph[col];
        pp[r] = acc;
        denom += ph[r] * acc;
    }

    // Gain k = P phi / (lambda + phi' P phi).
    const double inv_denom = 1.0 / denom;
    for (std::size_t r = 0; r < n; ++r)
        k[r] = pp[r] * inv_denom;

    // A-priori error and coefficient update.
    double pred = 0.0;
    for (std::size_t r = 0; r < n; ++r)
        pred += c[r] * ph[r];
    const double err = y - pred;
    if (std::isfinite(err)) {
        for (std::size_t r = 0; r < n; ++r)
            c[r] += k[r] * err;

        // P = (P - k (P phi)') / lambda, kept symmetric.
        const double inv_lambda = 1.0 / cfg.forgetting;
        for (std::size_t r = 0; r < n; ++r) {
            double *__restrict row = p.data() + r * n;
            const double kr = k[r];
            for (std::size_t col = 0; col < n; ++col)
                row[col] = (row[col] - kr * pp[col]) * inv_lambda;
        }
    }

    ++stepCount;
    return err;
}

double
RlsEstimator::trainRound(std::vector<double> &coeffs,
                         const PackedBatch &batch)
{
    TDFE_ASSERT(!batch.empty(), "RLS round on an empty batch");

    const std::size_t n = batch.size();
    const std::size_t dims = batch.dims();
    const double *__restrict xrow = batch.xData();
    const double *__restrict y = batch.yData();

    // Validation signal: error of the entering coefficients on the
    // whole (unseen) batch, matching SgdOptimizer::trainRound.
    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double r =
            y[i] - evalLinear(coeffs.data(), dims, xrow + i * dims);
        mse += r * r;
    }
    mse /= static_cast<double>(n);

    for (std::size_t i = 0; i < n; ++i)
        updateRow(coeffs, xrow + i * dims, y[i]);
    return mse;
}


void
RlsEstimator::save(BinaryWriter &w) const
{
    w.writeVec(p);
    w.writeU64(stepCount);
}

void
RlsEstimator::load(BinaryReader &r)
{
    std::vector<double> pm = r.readVec();
    if (!r.ok())
        return; // damaged stream: values are zeros, caller checks ok()
    if (pm.size() != p.size()) {
        TDFE_FATAL("RLS checkpoint size ", pm.size(),
                   " != configured ", p.size());
    }
    p = std::move(pm);
    stepCount = static_cast<std::size_t>(r.readU64());
}

} // namespace tdfe
