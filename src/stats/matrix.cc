#include "stats/matrix.hh"

#include <cmath>

#include "base/logging.hh"

namespace tdfe
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), store(rows * cols, 0.0)
{
    TDFE_ASSERT(rows > 0 && cols > 0, "matrix dimensions must be > 0");
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    TDFE_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return store[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    TDFE_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return store[r * nCols + c];
}

double *
Matrix::rowPtr(std::size_t r)
{
    TDFE_ASSERT(r < nRows, "matrix row out of range");
    return store.data() + r * nCols;
}

const double *
Matrix::rowPtr(std::size_t r) const
{
    TDFE_ASSERT(r < nRows, "matrix row out of range");
    return store.data() + r * nCols;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    TDFE_ASSERT(v.size() == nCols, "multiply: size mismatch");
    std::vector<double> out(nRows, 0.0);
    const double *__restrict m = store.data();
    for (std::size_t r = 0; r < nRows; ++r) {
        double acc = 0.0;
        const double *__restrict row = m + r * nCols;
        for (std::size_t c = 0; c < nCols; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

std::vector<double>
Matrix::multiplyTransposed(const std::vector<double> &v) const
{
    TDFE_ASSERT(v.size() == nRows, "multiplyTransposed: size mismatch");
    std::vector<double> out(nCols, 0.0);
    multiplyTransposedInto(v.data(), out.data());
    return out;
}

void
Matrix::multiplyTransposedInto(const double *v, double *out) const
{
    for (std::size_t c = 0; c < nCols; ++c)
        out[c] = 0.0;
    const double *__restrict m = store.data();
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *__restrict row = m + r * nCols;
        const double vr = v[r];
        for (std::size_t c = 0; c < nCols; ++c)
            out[c] += row[c] * vr;
    }
}

Matrix
Matrix::gram() const
{
    Matrix g(nCols, nCols);
    gramInto(g);
    return g;
}

void
Matrix::gramInto(Matrix &g) const
{
    TDFE_ASSERT(g.nRows == nCols && g.nCols == nCols,
                "gramInto: scratch must be cols x cols");
    double *__restrict gd = g.store.data();
    for (std::size_t i = 0; i < nCols * nCols; ++i)
        gd[i] = 0.0;
    // Rank-1 row accumulation, rows in ascending order: the same
    // summation order as the historical triple loop, but stride-1
    // over each row for both factors.
    const double *__restrict m = store.data();
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *__restrict row = m + r * nCols;
        for (std::size_t i = 0; i < nCols; ++i) {
            const double ri = row[i];
            double *__restrict grow = gd + i * nCols;
            for (std::size_t j = 0; j < nCols; ++j)
                grow[j] += ri * row[j];
        }
    }
}

void
Matrix::addDiagonal(double value)
{
    const std::size_t n = std::min(nRows, nCols);
    for (std::size_t i = 0; i < n; ++i)
        at(i, i) += value;
}

std::vector<double>
Matrix::solveSpd(const std::vector<double> &b) const
{
    TDFE_ASSERT(b.size() == nRows, "solveSpd: rhs size mismatch");
    std::vector<double> x(nRows, 0.0);
    std::vector<double> scratch;
    solveSpdInto(b.data(), x.data(), scratch);
    return x;
}

void
Matrix::solveSpdInto(const double *b, double *x,
                     std::vector<double> &scratch) const
{
    TDFE_ASSERT(nRows == nCols, "solveSpd needs a square matrix");

    const std::size_t n = nRows;
    // Scratch layout: [0, n*n) Cholesky factor, [n*n, n*n+n) the
    // forward-substitution intermediate. resize() is a no-op after
    // the first call with the same model order, so steady-state
    // solves allocate nothing.
    scratch.resize(n * n + n);
    double *__restrict l = scratch.data();
    double *__restrict y = scratch.data() + n * n;
    for (std::size_t i = 0; i < n * n; ++i)
        l[i] = 0.0;

    // Lower-triangular Cholesky factor.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l[i * n + k] * l[j * n + k];
            if (i == j) {
                if (acc <= 0.0)
                    TDFE_PANIC("solveSpd: matrix is not positive "
                               "definite (pivot ", acc, " at ", i,
                               "); add a ridge term");
                l[i * n + i] = std::sqrt(acc);
            } else {
                l[i * n + j] = acc / l[j * n + j];
            }
        }
    }

    // Forward substitution: L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l[i * n + k] * y[k];
        y[i] = acc / l[i * n + i];
    }

    // Back substitution: L^T x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= l[k * n + ii] * x[k];
        x[ii] = acc / l[ii * n + ii];
    }
}

} // namespace tdfe
