#include "stats/matrix.hh"

#include <cmath>

#include "base/logging.hh"

namespace tdfe
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
    TDFE_ASSERT(rows > 0 && cols > 0, "matrix dimensions must be > 0");
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    TDFE_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    TDFE_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    TDFE_ASSERT(v.size() == nCols, "multiply: size mismatch");
    std::vector<double> out(nRows, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < nCols; ++c)
            acc += data[r * nCols + c] * v[c];
        out[r] = acc;
    }
    return out;
}

std::vector<double>
Matrix::multiplyTransposed(const std::vector<double> &v) const
{
    TDFE_ASSERT(v.size() == nRows, "multiplyTransposed: size mismatch");
    std::vector<double> out(nCols, 0.0);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = 0; c < nCols; ++c)
            out[c] += data[r * nCols + c] * v[r];
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix g(nCols, nCols);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t i = 0; i < nCols; ++i)
            for (std::size_t j = 0; j < nCols; ++j)
                g.at(i, j) += data[r * nCols + i] * data[r * nCols + j];
    return g;
}

void
Matrix::addDiagonal(double value)
{
    const std::size_t n = std::min(nRows, nCols);
    for (std::size_t i = 0; i < n; ++i)
        at(i, i) += value;
}

std::vector<double>
Matrix::solveSpd(const std::vector<double> &b) const
{
    TDFE_ASSERT(nRows == nCols, "solveSpd needs a square matrix");
    TDFE_ASSERT(b.size() == nRows, "solveSpd: rhs size mismatch");

    const std::size_t n = nRows;
    // Lower-triangular Cholesky factor, built in a scratch copy.
    std::vector<double> l(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l[i * n + k] * l[j * n + k];
            if (i == j) {
                if (acc <= 0.0)
                    TDFE_PANIC("solveSpd: matrix is not positive "
                               "definite (pivot ", acc, " at ", i,
                               "); add a ridge term");
                l[i * n + i] = std::sqrt(acc);
            } else {
                l[i * n + j] = acc / l[j * n + j];
            }
        }
    }

    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l[i * n + k] * y[k];
        y[i] = acc / l[i * n + i];
    }

    // Back substitution: L^T x = y.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= l[k * n + ii] * x[k];
        x[ii] = acc / l[ii * n + ii];
    }
    return x;
}

} // namespace tdfe
