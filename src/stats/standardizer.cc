#include "stats/standardizer.hh"

#include "base/serial.hh"

#include <algorithm>

#include "base/logging.hh"

namespace tdfe
{

Standardizer::Standardizer(std::size_t dims) : featureStats(dims)
{
    TDFE_ASSERT(dims > 0, "standardizer needs at least one dimension");
}

void
Standardizer::observe(const std::vector<double> &x, double y)
{
    TDFE_ASSERT(x.size() == featureStats.size(),
                "feature size mismatch: ", x.size(), " vs ",
                featureStats.size());
    observeRow(x.data(), y);
}

void
Standardizer::observeRow(const double *x, double y)
{
    const std::size_t dims = featureStats.size();
    for (std::size_t d = 0; d < dims; ++d)
        featureStats[d].push(x[d]);
    targetStats.push(y);
    ++samples;
}

double
Standardizer::featureStd(std::size_t dim) const
{
    return std::max(featureStats[dim].stddev(), stdFloor);
}

double
Standardizer::featureMean(std::size_t dim) const
{
    return featureStats[dim].mean();
}

double
Standardizer::targetStd() const
{
    return std::max(targetStats.stddev(), stdFloor);
}

double
Standardizer::targetMean() const
{
    return targetStats.mean();
}

void
Standardizer::normalize(std::vector<double> &x) const
{
    TDFE_ASSERT(x.size() == featureStats.size(),
                "feature size mismatch in normalize");
    normalizeRow(x.data());
}

void
Standardizer::normalizeRow(double *x) const
{
    const std::size_t dims = featureStats.size();
    for (std::size_t d = 0; d < dims; ++d)
        x[d] = (x[d] - featureMean(d)) / featureStd(d);
}

double
Standardizer::normalizeTarget(double y) const
{
    return (y - targetMean()) / targetStd();
}

double
Standardizer::denormalizeTarget(double y_norm) const
{
    return y_norm * targetStd() + targetMean();
}

std::vector<double>
Standardizer::denormalizeCoefficients(
    const std::vector<double> &coeffs_norm) const
{
    TDFE_ASSERT(coeffs_norm.size() == featureStats.size() + 1,
                "expected intercept + ", featureStats.size(),
                " coefficients");
    std::vector<double> raw(coeffs_norm.size(), 0.0);
    denormalizeCoefficientsInto(coeffs_norm, raw.data());
    return raw;
}

void
Standardizer::denormalizeCoefficientsInto(
    const std::vector<double> &coeffs_norm, double *out) const
{
    TDFE_ASSERT(coeffs_norm.size() == featureStats.size() + 1,
                "expected intercept + ", featureStats.size(),
                " coefficients");
    // y = mu_y + sigma_y * (b0' + sum_i bi' * (x_i - mu_i) / s_i)
    double intercept = targetMean() + targetStd() * coeffs_norm[0];
    for (std::size_t d = 0; d < featureStats.size(); ++d) {
        const double slope =
            targetStd() * coeffs_norm[d + 1] / featureStd(d);
        out[d + 1] = slope;
        intercept -= slope * featureMean(d);
    }
    out[0] = intercept;
}


void
Standardizer::save(BinaryWriter &w) const
{
    w.writeU64(featureStats.size());
    for (const RunningStats &fs : featureStats)
        fs.save(w);
    targetStats.save(w);
    w.writeU64(samples);
}

void
Standardizer::load(BinaryReader &r)
{
    const std::uint64_t dims = r.readU64();
    if (!r.ok())
        return; // damaged stream: values are zeros, caller checks ok()
    if (dims != featureStats.size()) {
        TDFE_FATAL("standardizer checkpoint dims ", dims,
                   " != configured ", featureStats.size());
    }
    for (RunningStats &fs : featureStats)
        fs.load(r);
    targetStats.load(r);
    samples = static_cast<std::size_t>(r.readU64());
}

} // namespace tdfe
