/**
 * @file
 * Ordinary-least-squares fit via ridge-regularized normal equations.
 * This is the offline comparator used by the post-analysis baseline
 * (`src/postproc`) and by tests that validate the mini-batch GD
 * trainer against a closed-form solution.
 */

#ifndef TDFE_STATS_OLS_HH
#define TDFE_STATS_OLS_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

/** Result of an OLS fit: intercept-first coefficients + residuals. */
struct OlsFit
{
    /** coeffs[0] is the intercept, coeffs[i>=1] the slopes. */
    std::vector<double> coeffs;
    /** Root-mean-square residual on the training rows. */
    double trainRmse = 0.0;
};

/**
 * Fit y ~ b0 + sum_i b_i x_i by least squares.
 *
 * @param xs Feature rows (all the same length).
 * @param ys Targets, one per row.
 * @param ridge Tikhonov term added to the Gram diagonal; the default
 *        keeps the solve well-posed when rows are collinear (flat
 *        pre-shock data is rank-deficient).
 */
OlsFit fitOls(const std::vector<std::vector<double>> &xs,
              const std::vector<double> &ys, double ridge = 1e-8);

/** Evaluate an intercept-first linear model on one feature vector. */
double evalLinear(const std::vector<double> &coeffs,
                  const std::vector<double> &x);

/**
 * Raw-row overload for packed hot paths: @p coeffs points at
 * dims + 1 intercept-first coefficients, @p x at dims features.
 */
double evalLinear(const double *coeffs, std::size_t dims,
                  const double *x);

} // namespace tdfe

#endif // TDFE_STATS_OLS_HH
