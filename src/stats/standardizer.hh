/**
 * @file
 * Online per-dimension standardization for gradient-descent training.
 *
 * Hydrodynamic variables span many orders of magnitude; plain GD on
 * raw values either diverges or needs a per-problem learning rate.
 * The Standardizer tracks running mean/std of each feature dimension
 * and of the target, so the trainer can learn in normalized space and
 * report coefficients in raw space.
 */

#ifndef TDFE_STATS_STANDARDIZER_HH
#define TDFE_STATS_STANDARDIZER_HH

#include <cstddef>
#include <vector>

#include "stats/running_stats.hh"

namespace tdfe
{

/**
 * Tracks running statistics of feature vectors plus a scalar target,
 * and maps between raw and normalized space.
 */
class Standardizer
{
  public:
    /** @param dims Number of feature dimensions (target is extra). */
    explicit Standardizer(std::size_t dims);

    /** Fold one (features, target) observation into the statistics. */
    void observe(const std::vector<double> &x, double y);

    /** Fold a raw feature row of dims entries (packed hot path). */
    void observeRow(const double *x, double y);

    /** @return number of observations folded in. */
    std::size_t count() const { return samples; }

    /** Normalize a feature vector in place. */
    void normalize(std::vector<double> &x) const;

    /** Normalize a raw row of dims entries in place (packed path). */
    void normalizeRow(double *x) const;

    /** @return normalized target value. */
    double normalizeTarget(double y) const;

    /** @return raw-space target from a normalized prediction. */
    double denormalizeTarget(double y_norm) const;

    /**
     * Convert coefficients learned in normalized space
     * (b0', b1'..bn') into raw-space coefficients (b0, b1..bn) such
     * that b0 + sum_i bi*x_i == denormalizeTarget(b0' + sum bi'*x_i').
     *
     * @param coeffs_norm intercept-first normalized coefficients.
     * @return intercept-first raw-space coefficients.
     */
    std::vector<double>
    denormalizeCoefficients(const std::vector<double> &coeffs_norm)
        const;

    /**
     * As denormalizeCoefficients, writing the dims+1 raw
     * coefficients into caller-owned @p out (no allocation; the
     * per-iteration feature-store sink runs through here).
     */
    void denormalizeCoefficientsInto(
        const std::vector<double> &coeffs_norm, double *out) const;

    /** Feature standard deviation (floored away from zero). */
    double featureStd(std::size_t dim) const;

    /** Feature running mean. */
    double featureMean(std::size_t dim) const;

    /** Target standard deviation (floored away from zero). */
    double targetStd() const;

    /** Target running mean. */
    double targetMean() const;

    /** Checkpoint the running statistics. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    static constexpr double stdFloor = 1e-12;

    std::vector<RunningStats> featureStats;
    RunningStats targetStats;
    std::size_t samples = 0;
};

} // namespace tdfe

#endif // TDFE_STATS_STANDARDIZER_HH
