#include "stats/minibatch.hh"

#include "base/serial.hh"

#include "base/logging.hh"

namespace tdfe
{

MiniBatch::MiniBatch(std::size_t capacity, std::size_t dims)
    : cap(capacity), nDims(dims), storage(capacity)
{
    TDFE_ASSERT(capacity > 0, "mini-batch capacity must be > 0");
    TDFE_ASSERT(dims > 0, "mini-batch dimension must be > 0");
    for (auto &s : storage)
        s.x.resize(dims, 0.0);
}

void
MiniBatch::push(const std::vector<double> &x, double y)
{
    TDFE_ASSERT(!full(), "push into a full mini-batch; consume first");
    TDFE_ASSERT(x.size() == nDims,
                "sample dimension ", x.size(), " != batch dimension ",
                nDims);
    Sample &slot = storage[used];
    slot.x = x;
    slot.y = y;
    ++used;
    ++pushes;
}

const Sample &
MiniBatch::sample(std::size_t i) const
{
    TDFE_ASSERT(i < used, "sample index ", i, " out of range ", used);
    return storage[i];
}


void
MiniBatch::save(BinaryWriter &w) const
{
    w.writeU64(cap);
    w.writeU64(nDims);
    w.writeU64(used);
    for (std::size_t i = 0; i < used; ++i) {
        w.writeVec(storage[i].x);
        w.writeF64(storage[i].y);
    }
    w.writeU64(pushes);
}

void
MiniBatch::load(BinaryReader &r)
{
    const std::uint64_t ckpt_cap = r.readU64();
    const std::uint64_t ckpt_dims = r.readU64();
    if (ckpt_cap != cap || ckpt_dims != nDims) {
        TDFE_FATAL("mini-batch checkpoint shape (", ckpt_cap, ", ",
                   ckpt_dims, ") != configured (", cap, ", ", nDims,
                   ")");
    }
    used = static_cast<std::size_t>(r.readU64());
    if (used > cap)
        TDFE_FATAL("mini-batch checkpoint overfilled: ", used);
    for (std::size_t i = 0; i < used; ++i) {
        storage[i].x = r.readVec();
        if (storage[i].x.size() != nDims)
            TDFE_FATAL("mini-batch checkpoint sample dims mismatch");
        storage[i].y = r.readF64();
    }
    pushes = static_cast<std::size_t>(r.readU64());
}

} // namespace tdfe
