#include "stats/minibatch.hh"

#include "base/serial.hh"

#include <algorithm>

#include "base/logging.hh"

namespace tdfe
{

PackedBatch::PackedBatch(std::size_t capacity, std::size_t dims)
    : cap(capacity), nDims(dims), xs(capacity * dims, 0.0),
      ys(capacity, 0.0)
{
    TDFE_ASSERT(capacity > 0, "mini-batch capacity must be > 0");
    TDFE_ASSERT(dims > 0, "mini-batch dimension must be > 0");
}

void
PackedBatch::push(const double *x, double y)
{
    double *dst = appendRow(y);
    std::copy(x, x + nDims, dst);
}

void
PackedBatch::push(const std::vector<double> &x, double y)
{
    TDFE_ASSERT(x.size() == nDims,
                "sample dimension ", x.size(), " != batch dimension ",
                nDims);
    push(x.data(), y);
}

double *
PackedBatch::appendRow(double y)
{
    TDFE_ASSERT(!full(), "push into a full mini-batch; consume first");
    double *dst = xs.data() + used * nDims;
    ys[used] = y;
    ++used;
    ++pushes;
    return dst;
}

const double *
PackedBatch::row(std::size_t i) const
{
    TDFE_ASSERT(i < used, "sample index ", i, " out of range ", used);
    return xs.data() + i * nDims;
}

double
PackedBatch::target(std::size_t i) const
{
    TDFE_ASSERT(i < used, "sample index ", i, " out of range ", used);
    return ys[i];
}


void
PackedBatch::save(BinaryWriter &w) const
{
    w.writeU64(cap);
    w.writeU64(nDims);
    w.writeU64(used);
    // Per-sample length-prefixed rows: byte-identical to the AoS
    // writeVec(x)/writeF64(y) format this layout replaced.
    for (std::size_t i = 0; i < used; ++i) {
        w.writeU64(nDims);
        const double *r = xs.data() + i * nDims;
        for (std::size_t d = 0; d < nDims; ++d)
            w.writeF64(r[d]);
        w.writeF64(ys[i]);
    }
    w.writeU64(pushes);
}

void
PackedBatch::load(BinaryReader &r)
{
    const std::uint64_t ckpt_cap = r.readU64();
    const std::uint64_t ckpt_dims = r.readU64();
    if (!r.ok())
        return; // damaged stream: values are zeros, caller checks ok()
    if (ckpt_cap != cap || ckpt_dims != nDims) {
        TDFE_FATAL("mini-batch checkpoint shape (", ckpt_cap, ", ",
                   ckpt_dims, ") != configured (", cap, ", ", nDims,
                   ")");
    }
    used = static_cast<std::size_t>(r.readU64());
    if (!r.ok()) {
        used = 0;
        return;
    }
    if (used > cap)
        TDFE_FATAL("mini-batch checkpoint overfilled: ", used);
    for (std::size_t i = 0; i < used; ++i) {
        const std::uint64_t row_dims = r.readU64();
        if (!r.ok())
            return;
        if (row_dims != nDims)
            TDFE_FATAL("mini-batch checkpoint sample dims mismatch");
        double *dst = xs.data() + i * nDims;
        for (std::size_t d = 0; d < nDims; ++d)
            dst[d] = r.readF64();
        ys[i] = r.readF64();
    }
    pushes = static_cast<std::size_t>(r.readU64());
}

} // namespace tdfe
