/**
 * @file
 * Welford-style streaming mean/variance accumulator. Used by the
 * online Standardizer and by diagnostic summaries.
 */

#ifndef TDFE_STATS_RUNNING_STATS_HH
#define TDFE_STATS_RUNNING_STATS_HH

#include <cmath>
#include <cstddef>
#include <limits>

#include "base/serial.hh"

namespace tdfe
{

/**
 * Numerically stable single-pass accumulator for count, mean,
 * variance, min, and max.
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void
    push(double x)
    {
        ++n;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n);
        m2 += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Reset to the empty state. */
    void
    clear()
    {
        n = 0;
        mean_ = 0.0;
        m2 = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /** @return number of observations folded in. */
    std::size_t count() const { return n; }

    /** @return sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** @return population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** @return population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** @return smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** @return largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Serialize the accumulator state. */
    void
    save(BinaryWriter &w) const
    {
        w.writeU64(n);
        w.writeF64(mean_);
        w.writeF64(m2);
        w.writeF64(min_);
        w.writeF64(max_);
    }

    /** Restore the accumulator state. */
    void
    load(BinaryReader &r)
    {
        n = static_cast<std::size_t>(r.readU64());
        mean_ = r.readF64();
        m2 = r.readF64();
        min_ = r.readF64();
        max_ = r.readF64();
    }

  private:
    std::size_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace tdfe

#endif // TDFE_STATS_RUNNING_STATS_HH
