#include "stats/sgd.hh"

#include "base/serial.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "stats/minibatch.hh"

namespace tdfe
{

SgdOptimizer::SgdOptimizer(std::size_t dims, const SgdConfig &config)
    : cfg(config), velocity(dims + 1, 0.0), gradScratch(dims + 1, 0.0)
{
    TDFE_ASSERT(cfg.learningRate > 0.0, "learning rate must be > 0");
    TDFE_ASSERT(cfg.momentum >= 0.0 && cfg.momentum < 1.0,
                "momentum must lie in [0, 1)");
    TDFE_ASSERT(cfg.epochsPerBatch > 0, "need at least one epoch");
}

double
SgdOptimizer::gradient(const std::vector<double> &coeffs,
                       const PackedBatch &batch,
                       std::vector<double> &grad) const
{
    const std::size_t n = batch.size();
    const std::size_t dims = batch.dims();
    const double inv_n = 1.0 / static_cast<double>(n);

    std::fill(grad.begin(), grad.end(), 0.0);
    // Fused single pass over the packed design matrix: each row is
    // walked once while hot — the stride-1 dot product feeding the
    // prediction and the gradient axpy share the same row pointer,
    // where the AoS layout re-chased a per-sample heap vector for
    // each of the two inner loops. Arithmetic order (ascending d,
    // the literal 2.0*err*x*inv_n grouping) is identical to the
    // legacy kernel, so coefficients stay bitwise-equal.
    const double *__restrict x = batch.xData();
    const double *__restrict y = batch.yData();
    const double *__restrict c = coeffs.data();
    double *__restrict g = grad.data();
    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i, x += dims) {
        double pred = c[0];
        for (std::size_t d = 0; d < dims; ++d)
            pred += c[d + 1] * x[d];
        const double err = pred - y[i];
        mse += sqr(err);
        g[0] += 2.0 * err * inv_n;
        for (std::size_t d = 0; d < dims; ++d)
            g[d + 1] += 2.0 * err * x[d] * inv_n;
    }
    // L2 penalty on slopes only; the intercept is never shrunk.
    for (std::size_t d = 1; d < coeffs.size(); ++d)
        g[d] += 2.0 * cfg.l2 * c[d];
    return mse * inv_n;
}

double
SgdOptimizer::trainRound(std::vector<double> &coeffs,
                         const PackedBatch &batch)
{
    TDFE_ASSERT(coeffs.size() == velocity.size(),
                "coefficient vector has wrong size");
    TDFE_ASSERT(!batch.empty(), "cannot train on an empty batch");

    std::vector<double> &grad = gradScratch;
    double pre_update_mse = 0.0;
    for (std::size_t epoch = 0; epoch < cfg.epochsPerBatch; ++epoch) {
        const double mse = gradient(coeffs, batch, grad);
        if (epoch == 0)
            pre_update_mse = mse;

        if (cfg.gradClip > 0.0) {
            double norm2 = 0.0;
            for (const double g : grad)
                norm2 += sqr(g);
            const double norm = std::sqrt(norm2);
            if (norm > cfg.gradClip) {
                const double scale = cfg.gradClip / norm;
                for (double &g : grad)
                    g *= scale;
            }
        }

        for (std::size_t d = 0; d < coeffs.size(); ++d) {
            velocity[d] =
                cfg.momentum * velocity[d] - cfg.learningRate * grad[d];
            coeffs[d] += velocity[d];
        }
        ++stepCount;
    }
    return pre_update_mse;
}


void
SgdOptimizer::save(BinaryWriter &w) const
{
    w.writeVec(velocity);
    w.writeU64(stepCount);
}

void
SgdOptimizer::load(BinaryReader &r)
{
    std::vector<double> v = r.readVec();
    if (!r.ok())
        return; // damaged stream: values are zeros, caller checks ok()
    if (v.size() != velocity.size()) {
        TDFE_FATAL("SGD checkpoint size ", v.size(),
                   " != configured ", velocity.size());
    }
    velocity = std::move(v);
    stepCount = static_cast<std::size_t>(r.readU64());
}

} // namespace tdfe
