/**
 * @file
 * Error metrics for comparing fitted/predicted series against
 * simulation ground truth. The paper reports "error rates" as mean
 * relative errors in percent; errorRatePct() reproduces that metric.
 */

#ifndef TDFE_STATS_METRICS_HH
#define TDFE_STATS_METRICS_HH

#include <vector>

namespace tdfe
{

/** Root-mean-square error between two equal-length series. */
double rmse(const std::vector<double> &predicted,
            const std::vector<double> &actual);

/**
 * Mean absolute percentage error, in [0, inf). Denominators smaller
 * than @p floor are clamped to it so near-zero truth values (common
 * ahead of the shock front) do not produce infinities.
 */
double mape(const std::vector<double> &predicted,
            const std::vector<double> &actual, double floor = 1e-9);

/**
 * The paper's "error rate (%)": mean relative error against the mean
 * magnitude of the actual series. Using the series scale as the
 * denominator matches the paper's tables, where a flat-zero region
 * still yields a finite (if large) percentage.
 */
double errorRatePct(const std::vector<double> &predicted,
                    const std::vector<double> &actual);

/** Coefficient of determination R^2 (1 = perfect fit). */
double r2Score(const std::vector<double> &predicted,
               const std::vector<double> &actual);

/** Largest absolute elementwise difference. */
double maxAbsError(const std::vector<double> &predicted,
                   const std::vector<double> &actual);

} // namespace tdfe

#endif // TDFE_STATS_METRICS_HH
