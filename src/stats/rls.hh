/**
 * @file
 * Recursive least squares (RLS) with exponential forgetting: an
 * alternative online optimizer for the linear AR model. Where the
 * paper trains by mini-batch gradient descent, RLS maintains the
 * exact (forgetting-weighted) least-squares solution with one rank-1
 * update per sample — O(n^2) per sample for model order n, no
 * learning-rate tuning, and immediate adaptation after regime
 * changes such as a shock arrival.
 *
 * The estimator mirrors SgdOptimizer's calling conventions
 * (intercept-first coefficient vectors, trainRound() over a
 * MiniBatch returning the pre-update validation MSE) so the core
 * trainer can swap optimizers behind one configuration flag.
 */

#ifndef TDFE_STATS_RLS_HH
#define TDFE_STATS_RLS_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

class BinaryReader;
class BinaryWriter;
class PackedBatch;

/** Tunables for the recursive-least-squares estimator. */
struct RlsConfig
{
    /**
     * Forgetting factor lambda in (0, 1]. 1 weights all history
     * equally (converges to the OLS solution); smaller values track
     * drifting dynamics with an effective memory of ~1/(1-lambda)
     * samples.
     */
    double forgetting = 0.995;
    /**
     * Initial inverse-covariance scale: P0 = delta * I. Large values
     * mean a diffuse prior (fast initial adaptation).
     */
    double delta = 100.0;
};

/**
 * Exponentially-weighted recursive least squares over an
 * intercept-first linear model.
 */
class RlsEstimator
{
  public:
    /**
     * @param dims Feature dimensions (coefficients = dims + 1).
     * @param config Estimator tunables.
     */
    RlsEstimator(std::size_t dims, const RlsConfig &config);

    /**
     * Fold one sample into the estimate, updating @p coeffs in
     * place.
     *
     * @param coeffs Intercept-first coefficients (dims + 1 entries).
     * @param x Feature vector (dims entries).
     * @param y Target.
     * @return the a-priori (pre-update) prediction error.
     */
    double update(std::vector<double> &coeffs,
                  const std::vector<double> &x, double y);

    /** Raw-row overload for the packed hot path (dims entries). */
    double updateRow(std::vector<double> &coeffs, const double *x,
                     double y);

    /**
     * Consume a mini-batch sample-by-sample, mirroring
     * SgdOptimizer::trainRound. Both the validation pass and the
     * update sweep run stride-1 over the packed design matrix.
     *
     * @return mean-squared error of the batch under the coefficients
     * *before* this round's updates (the rolling validation signal).
     */
    double trainRound(std::vector<double> &coeffs,
                      const PackedBatch &batch);

    /** @return total samples folded in. */
    std::size_t steps() const { return stepCount; }

    /** Reset the inverse covariance to the diffuse prior. */
    void reset();

    /** Checkpoint the inverse-covariance state. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    RlsConfig cfg;
    std::size_t nDims;
    /** Inverse covariance P, row-major (dims+1)^2. */
    std::vector<double> p;
    /** Scratch: phi = [1, x...], k = gain, pPhi = P*phi. */
    std::vector<double> phi, gain, pPhi;
    std::size_t stepCount = 0;
};

} // namespace tdfe

#endif // TDFE_STATS_RLS_HH
