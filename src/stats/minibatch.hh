/**
 * @file
 * Fixed-capacity mini-batch buffer (paper Sec. III-B.2): samples
 * accumulate during simulation iterations; when the batch fills, the
 * trainer consumes it in one gradient-descent round and the batch
 * resets to collect the next round.
 *
 * Layout: a *packed design matrix*. All feature rows live in one
 * contiguous row-major double block (capacity x dims) with the
 * targets in a separate column, so the training kernels (SGD
 * gradient, RLS rank-1 updates, OLS normal equations) traverse
 * stride-1 memory instead of chasing one heap allocation per sample.
 * The block is sized once at construction and rows are built in
 * place — a push never allocates.
 */

#ifndef TDFE_STATS_MINIBATCH_HH
#define TDFE_STATS_MINIBATCH_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

class BinaryReader;
class BinaryWriter;

/**
 * Bounded packed sample buffer with fill/consume semantics. The
 * buffer never reallocates after construction, keeping the
 * per-iteration in-situ cost constant.
 */
class PackedBatch
{
  public:
    /**
     * @param capacity Samples per training round.
     * @param dims Feature dimensions per sample.
     */
    PackedBatch(std::size_t capacity, std::size_t dims);

    /**
     * Append one sample from a raw feature row of dims() values.
     * Panics if full (callers must consume or clear first).
     */
    void push(const double *x, double y);

    /** Append one sample; panics on dimension mismatch. */
    void push(const std::vector<double> &x, double y);

    /**
     * Append one sample and return the mutable row so the caller can
     * build the features in place (e.g. copy + normalize) without an
     * intermediate scratch vector. The row is *not* initialized; the
     * caller must fill all dims() entries before the batch is
     * consumed.
     */
    double *appendRow(double y);

    /** @return true once size() == capacity(). */
    bool full() const { return used == cap; }

    /** @return true when no samples are buffered. */
    bool empty() const { return used == 0; }

    /** @return samples currently buffered. */
    std::size_t size() const { return used; }

    /** @return configured capacity. */
    std::size_t capacity() const { return cap; }

    /** @return configured feature dimension count. */
    std::size_t dims() const { return nDims; }

    /** @return feature row @p i (dims() contiguous doubles). */
    const double *row(std::size_t i) const;

    /** @return target of sample @p i. */
    double target(std::size_t i) const;

    /** @return the packed row-major feature block (size()*dims()). */
    const double *xData() const { return xs.data(); }

    /** @return the target column (size() entries). */
    const double *yData() const { return ys.data(); }

    /** Drop all buffered samples (capacity is retained). */
    void clear() { used = 0; }

    /** @return total samples pushed over the buffer's lifetime. */
    std::size_t lifetimePushes() const { return pushes; }

    /**
     * Checkpoint the buffered samples. The byte format is unchanged
     * from the per-sample (AoS) layout this class replaced, so
     * region/analysis checkpoints round-trip across the refactor.
     * @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    std::size_t cap;
    std::size_t nDims;
    /** Row-major capacity x dims feature block. */
    std::vector<double> xs;
    /** Target column. */
    std::vector<double> ys;
    std::size_t used = 0;
    std::size_t pushes = 0;
};

/** Historical name: the packed layout replaced the AoS MiniBatch. */
using MiniBatch = PackedBatch;

} // namespace tdfe

#endif // TDFE_STATS_MINIBATCH_HH
