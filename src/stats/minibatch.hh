/**
 * @file
 * Fixed-capacity mini-batch buffer (paper Sec. III-B.2): samples
 * accumulate during simulation iterations; when the batch fills, the
 * trainer consumes it in one gradient-descent round and the batch
 * resets to collect the next round.
 */

#ifndef TDFE_STATS_MINIBATCH_HH
#define TDFE_STATS_MINIBATCH_HH

#include <cstddef>
#include <vector>

namespace tdfe
{

class BinaryReader;
class BinaryWriter;

/** One supervised sample: feature vector plus scalar target. */
struct Sample
{
    std::vector<double> x;
    double y = 0.0;
};

/**
 * Bounded sample buffer with fill/consume semantics. The buffer never
 * reallocates after construction, keeping the per-iteration in-situ
 * cost constant.
 */
class MiniBatch
{
  public:
    /**
     * @param capacity Samples per training round.
     * @param dims Feature dimensions per sample.
     */
    MiniBatch(std::size_t capacity, std::size_t dims);

    /**
     * Append one sample. Panics if full (callers must consume or
     * clear first) or on dimension mismatch.
     */
    void push(const std::vector<double> &x, double y);

    /** @return true once size() == capacity(). */
    bool full() const { return used == cap; }

    /** @return true when no samples are buffered. */
    bool empty() const { return used == 0; }

    /** @return samples currently buffered. */
    std::size_t size() const { return used; }

    /** @return configured capacity. */
    std::size_t capacity() const { return cap; }

    /** @return configured feature dimension count. */
    std::size_t dims() const { return nDims; }

    /** @return sample @p i (0 <= i < size()). */
    const Sample &sample(std::size_t i) const;

    /** Drop all buffered samples (capacity is retained). */
    void clear() { used = 0; }

    /** @return total samples pushed over the buffer's lifetime. */
    std::size_t lifetimePushes() const { return pushes; }

    /** Checkpoint the buffered samples. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    std::size_t cap;
    std::size_t nDims;
    std::vector<Sample> storage;
    std::size_t used = 0;
    std::size_t pushes = 0;
};

} // namespace tdfe

#endif // TDFE_STATS_MINIBATCH_HH
