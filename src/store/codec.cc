#include "store/codec.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "base/portable.hh"

namespace tdfe
{

namespace store
{

namespace
{

/** Lazily-built CRC-32 lookup table (reflected polynomial). */
const std::uint32_t *
crcTable()
{
    static std::uint32_t table[256];
    static const bool built = [] {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        return true;
    }();
    (void)built;
    return table;
}

inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

inline double
bitsDouble(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

/** MSB-first bit appender over a byte vector. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t> &out) : out(out) {}

    void
    writeBit(unsigned b)
    {
        cur = static_cast<std::uint8_t>((cur << 1) | (b & 1u));
        if (++used == 8) {
            out.push_back(cur);
            cur = 0;
            used = 0;
        }
    }

    /** Append the lowest @p n bits of @p v, most significant first. */
    void
    writeBits(std::uint64_t v, unsigned n)
    {
        for (unsigned i = n; i-- > 0;)
            writeBit(static_cast<unsigned>((v >> i) & 1u));
    }

    /** Flush the trailing partial byte (zero-padded). */
    void
    finish()
    {
        if (used > 0) {
            out.push_back(
                static_cast<std::uint8_t>(cur << (8 - used)));
            cur = 0;
            used = 0;
        }
    }

  private:
    std::vector<std::uint8_t> &out;
    std::uint8_t cur = 0;
    int used = 0;
};

/** MSB-first bit reader; latches !ok() past the end. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    unsigned
    readBit()
    {
        if (used == 0) {
            if (p == end) {
                ok_ = false;
                return 0;
            }
            cur = *p++;
            used = 8;
        }
        --used;
        return static_cast<unsigned>((cur >> used) & 1u);
    }

    std::uint64_t
    readBits(unsigned n)
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v = (v << 1) | readBit();
        return v;
    }

    bool ok() const { return ok_; }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
    std::uint8_t cur = 0;
    int used = 0;
    bool ok_ = true;
};

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const std::uint32_t *table = crcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80u) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t
ByteReader::u32()
{
    std::uint32_t v = 0;
    if (remaining() < 4) {
        ok_ = false;
        p = end;
        return 0;
    }
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    std::uint64_t v = 0;
    if (remaining() < 8) {
        ok_ = false;
        p = end;
        return 0;
    }
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
}

std::int64_t
ByteReader::i64()
{
    return static_cast<std::int64_t>(u64());
}

std::uint64_t
ByteReader::varint()
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (p == end) {
            ok_ = false;
            return 0;
        }
        const std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
        if ((b & 0x80u) == 0)
            return v;
    }
    ok_ = false; // overlong encoding
    return 0;
}

void
ByteReader::bytes(void *dst, std::size_t n)
{
    if (remaining() < n) {
        ok_ = false;
        p = end;
        std::memset(dst, 0, n);
        return;
    }
    std::memcpy(dst, p, n);
    p += n;
}

void
ByteReader::skip(std::size_t n)
{
    if (remaining() < n) {
        ok_ = false;
        p = end;
        return;
    }
    p += n;
}

void
encodeIntColumn(const std::int64_t *vals, std::size_t n,
                std::vector<std::uint8_t> &out)
{
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // First value deltas against 0, so one code path covers all.
        putVarint(out, zigzagEncode(vals[i] - prev));
        prev = vals[i];
    }
}

bool
decodeIntColumn(const std::uint8_t *data, std::size_t len,
                std::size_t n, std::int64_t *out)
{
    ByteReader r(data, len);
    // Accumulate in unsigned so crafted deltas wrap (defined)
    // instead of overflowing signed arithmetic (UB) — this path
    // must survive hostile input gracefully.
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev += static_cast<std::uint64_t>(
            zigzagDecode(r.varint()));
        out[i] = static_cast<std::int64_t>(prev);
    }
    return r.ok() && r.remaining() == 0;
}

void
encodeIntColumnDict(const std::int64_t *vals, std::size_t n,
                    std::vector<std::uint8_t> &out)
{
    // Dictionary-build pass: sorted distinct values, then each
    // record as a fixed-width index into them.
    std::vector<std::int64_t> dict(vals, vals + n);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

    putVarint(out, dict.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < dict.size(); ++i) {
        // First entry zigzags against 0; later ones store the
        // (positive, sorted) gap to the previous entry.
        putVarint(out, i == 0
                           ? zigzagEncode(dict[0])
                           : static_cast<std::uint64_t>(
                                 dict[i] - prev));
        prev = dict[i];
    }

    unsigned bits = 0;
    while ((std::size_t{1} << bits) < dict.size())
        ++bits;
    if (bits == 0)
        return; // constant column: the dictionary alone decodes it
    BitWriter bw(out);
    for (std::size_t i = 0; i < n; ++i) {
        const auto it =
            std::lower_bound(dict.begin(), dict.end(), vals[i]);
        bw.writeBits(
            static_cast<std::uint64_t>(it - dict.begin()), bits);
    }
    bw.finish();
}

bool
decodeIntColumnDict(const std::uint8_t *data, std::size_t len,
                    std::size_t n, std::int64_t *out)
{
    ByteReader r(data, len);
    const std::uint64_t dict_n = r.varint();
    if (!r.ok() || dict_n == 0 || dict_n > n)
        return false;
    std::vector<std::int64_t> dict(
        static_cast<std::size_t>(dict_n));
    // Unsigned accumulation: crafted gaps wrap instead of UB.
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < dict.size(); ++i) {
        prev = i == 0 ? static_cast<std::uint64_t>(
                            zigzagDecode(r.varint()))
                      : prev + r.varint();
        dict[i] = static_cast<std::int64_t>(prev);
    }
    if (!r.ok())
        return false;
    unsigned bits = 0;
    while ((std::uint64_t{1} << bits) < dict_n)
        ++bits;
    if (bits == 0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = dict[0];
        return r.remaining() == 0;
    }
    if (r.remaining() != (n * bits + 7) / 8)
        return false; // short or trailing-garbage index section
    BitReader br(r.cursor(), r.remaining());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t idx = br.readBits(bits);
        if (!br.ok() || idx >= dict_n)
            return false;
        out[i] = dict[static_cast<std::size_t>(idx)];
    }
    return br.ok();
}

void
encodeIntColumnRle(const std::int64_t *vals, std::size_t n,
                   std::vector<std::uint8_t> &out)
{
    for (std::size_t i = 0; i < n;) {
        std::size_t run = 1;
        while (i + run < n && vals[i + run] == vals[i])
            ++run;
        putVarint(out, zigzagEncode(vals[i]));
        putVarint(out, run);
        i += run;
    }
}

bool
decodeIntColumnRle(const std::uint8_t *data, std::size_t len,
                   std::size_t n, std::int64_t *out)
{
    ByteReader r(data, len);
    std::size_t filled = 0;
    while (filled < n) {
        const std::int64_t v = zigzagDecode(r.varint());
        const std::uint64_t run = r.varint();
        if (!r.ok() || run == 0 || run > n - filled)
            return false;
        for (std::uint64_t k = 0; k < run; ++k)
            out[filled++] = v;
    }
    return r.ok() && r.remaining() == 0;
}

void
encodeIntColumnTagged(const std::int64_t *vals, std::size_t n,
                      std::vector<std::uint8_t> &out)
{
    // Trial-encode every candidate and keep the smallest payload.
    // The extra encodes cost microseconds per sealed block; the
    // store is orders of magnitude smaller than the trace it
    // replaces, so the write path can afford to shop around.
    std::vector<std::uint8_t> delta;
    encodeIntColumn(vals, n, delta);

    IntCodec best = IntCodec::DeltaVarint;
    const std::vector<std::uint8_t> *best_bytes = &delta;

    // Dictionary only pays off (and only stays cheap to build) on
    // genuinely low-cardinality columns; a quick bounded distinct
    // count guards the sort in encodeIntColumnDict.
    std::vector<std::uint8_t> dict;
    constexpr std::size_t maxDictValues = 256;
    if (n > 0) {
        std::vector<std::int64_t> probe(vals, vals + n);
        std::sort(probe.begin(), probe.end());
        const std::size_t distinct = static_cast<std::size_t>(
            std::unique(probe.begin(), probe.end()) -
            probe.begin());
        if (distinct <= maxDictValues) {
            encodeIntColumnDict(vals, n, dict);
            if (dict.size() < best_bytes->size()) {
                best = IntCodec::Dict;
                best_bytes = &dict;
            }
        }
    }

    std::vector<std::uint8_t> rle;
    encodeIntColumnRle(vals, n, rle);
    if (rle.size() < best_bytes->size()) {
        best = IntCodec::Rle;
        best_bytes = &rle;
    }

    out.push_back(static_cast<std::uint8_t>(best));
    out.insert(out.end(), best_bytes->begin(), best_bytes->end());
}

bool
decodeIntColumnTagged(const std::uint8_t *data, std::size_t len,
                      std::size_t n, std::int64_t *out)
{
    if (len < 1)
        return false;
    const std::uint8_t codec = data[0];
    ++data;
    --len;
    switch (static_cast<IntCodec>(codec)) {
      case IntCodec::DeltaVarint:
        return decodeIntColumn(data, len, n, out);
      case IntCodec::Dict:
        return decodeIntColumnDict(data, len, n, out);
      case IntCodec::Rle:
        return decodeIntColumnRle(data, len, n, out);
    }
    return false;
}

BlockZone
computeBlockZone(const std::vector<std::vector<std::int64_t>> &ints,
                 const std::vector<std::vector<double>> &dbls)
{
    BlockZone z;
    for (std::size_t c = 0; c < zoneIntColumns; ++c) {
        const std::vector<std::int64_t> &col = ints[c];
        z.intMin[c] = col[0];
        z.intMax[c] = col[0];
        for (const std::int64_t v : col) {
            if (v < z.intMin[c])
                z.intMin[c] = v;
            if (v > z.intMax[c])
                z.intMax[c] = v;
        }
    }
    for (std::size_t c = 0; c < zoneDoubleColumns; ++c) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const double v : dbls[c]) {
            if (std::isnan(v))
                continue;
            if (v < lo)
                lo = v;
            if (v > hi)
                hi = v;
        }
        z.dblMin[c] = lo;
        z.dblMax[c] = hi;
    }
    return z;
}

void
encodeDoubleColumn(const double *vals, std::size_t n,
                   std::vector<std::uint8_t> &out)
{
    BitWriter bw(out);
    std::uint64_t prev = 0;
    unsigned winLz = 0, winLen = 0;
    bool haveWindow = false;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t bits = doubleBits(vals[i]);
        if (i == 0) {
            bw.writeBits(bits, 64);
            prev = bits;
            continue;
        }
        const std::uint64_t x = bits ^ prev;
        prev = bits;
        if (x == 0) {
            bw.writeBit(0);
            continue;
        }
        bw.writeBit(1);
        unsigned lz =
            static_cast<unsigned>(__builtin_clzll(x));
        const unsigned tz =
            static_cast<unsigned>(__builtin_ctzll(x));
        if (lz > 31)
            lz = 31; // 5-bit field; a longer prefix is just stored
        const unsigned winTz = 64 - winLz - winLen;
        if (haveWindow && lz >= winLz && tz >= winTz) {
            // The previous window still covers every meaningful bit.
            bw.writeBit(0);
            bw.writeBits(x >> winTz, winLen);
        } else {
            const unsigned len = 64 - lz - tz;
            bw.writeBit(1);
            bw.writeBits(lz, 5);
            bw.writeBits(len - 1, 6); // len in [1, 64]
            bw.writeBits(x >> tz, len);
            winLz = lz;
            winLen = len;
            haveWindow = true;
        }
    }
    bw.finish();
}

bool
decodeDoubleColumn(const std::uint8_t *data, std::size_t len,
                   std::size_t n, double *out)
{
    BitReader br(data, len);
    std::uint64_t prev = 0;
    unsigned winLz = 0, winLen = 0;
    bool haveWindow = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (i == 0) {
            prev = br.readBits(64);
            out[0] = bitsDouble(prev);
            continue;
        }
        if (br.readBit() == 0) {
            out[i] = bitsDouble(prev);
            continue;
        }
        if (br.readBit() != 0) {
            winLz = static_cast<unsigned>(br.readBits(5));
            winLen = static_cast<unsigned>(br.readBits(6)) + 1;
            haveWindow = true;
        } else if (!haveWindow) {
            return false; // window reuse before any window defined
        }
        if (winLz + winLen > 64)
            return false;
        const std::uint64_t meaningful = br.readBits(winLen);
        prev ^= meaningful << (64 - winLz - winLen);
        out[i] = bitsDouble(prev);
    }
    // Trailing padding must fit in the flushed partial byte.
    return br.ok();
}

} // namespace store

} // namespace tdfe
