/**
 * @file
 * On-disk layout constants of the feature store, shared by the
 * writer, the reader, and tdfstool. The format is append-only and
 * block-based in the spirit of TrailDB:
 *
 *   [header]  magic "TDFSTOR1", u32 version, u32 block capacity,
 *             u32 int columns, u32 double columns        (24 bytes)
 *   [blocks]  each: u32 record count,
 *             per column (ints then doubles): u32 encoded length +
 *             encoded bytes,
 *             u32 CRC-32 over everything before it in the block
 *   [footer]  u64 block count,
 *             per block: u64 offset, u64 size, u64 records,
 *                        i64 first iteration, i64 last iteration,
 *             u64 total records,
 *             u32 sorted flag (1: appends were nondecreasing in
 *                 iteration, enabling block-index range queries),
 *             u32 int columns, u32 double columns, u64 coeff count,
 *             per column: u32 name length + name bytes,
 *             (v2+) per block a zone map entry: i64 min + i64 max
 *                 for each of the 3 integer columns, then raw f64
 *                 bits of min + max for each of the 4 fixed double
 *                 columns (NaNs excluded; an all-NaN column stores
 *                 min > max so no predicate can select the block),
 *             then u32 CRC-32 over the footer bytes before it
 *   [trailer] u64 footer offset, magic "TDFSEND1"        (16 bytes)
 *
 * Version history. v1 encodes integer columns as delta+zigzag
 * varints and has no zone map. v2 prefixes every integer column's
 * payload with a one-byte codec id — delta varint, dictionary, or
 * run-length, whichever trial-encodes smallest for that block (the
 * low-cardinality columns analysis/stop typically dictionary- or
 * RLE-pack to a handful of bytes) — and appends the per-block zone
 * map to the footer so filtered queries can skip whole blocks
 * without reading them. Double columns are Gorilla XOR in both.
 * Readers of this build open v1 and v2; v1-only readers reject v2
 * cleanly at the header version check.
 *
 * The trailer is fixed-size and at the very end, so a reader finds
 * the footer without scanning; any truncation loses the trailer (or
 * breaks the footer CRC) and is rejected at open.
 *
 * Crash consistency: the layout is deliberately recoverable without
 * its footer. Blocks are self-delimiting (the record count and the
 * per-column lengths determine the block's extent) and individually
 * CRC'd, the header alone fixes the schema (column names are
 * deterministic functions of it), and the writer truncates the file
 * back to the last sealed block when a write fails — so any crash
 * or mid-run degrade leaves "header + N intact blocks + possibly a
 * torn tail", and FeatureStoreReader::salvage / `tdfstool recover`
 * rebuild the index by scanning forward and CRC-checking each
 * block. Sealed data is recovered exactly; only the unsealed tail
 * (at most blockCapacity-1 staged records, plus the in-flight block
 * under DurabilityPolicy::None) can be lost.
 */

#ifndef TDFE_STORE_FORMAT_HH
#define TDFE_STORE_FORMAT_HH

#include <cstddef>
#include <cstdint>

namespace tdfe
{

namespace store
{

/** File-leading magic. */
constexpr char headerMagic[8] = {'T', 'D', 'F', 'S',
                                 'T', 'O', 'R', '1'};
/** File-trailing magic. */
constexpr char trailerMagic[8] = {'T', 'D', 'F', 'S',
                                  'E', 'N', 'D', '1'};

/** Format version written by this build. */
constexpr std::uint32_t formatVersion = 2;

/** Oldest format version this build's reader still opens. */
constexpr std::uint32_t minSupportedFormatVersion = 1;

/** Bounds shared by writer validation and reader rejection, so a
 *  writer can never produce a file its own reader refuses. @{ */
constexpr std::size_t maxBlockCapacity = std::size_t{1} << 24;
constexpr std::size_t maxDoubleColumns = 4096;
/** @} */

/** magic + version + capacity + int cols + double cols. */
constexpr std::size_t headerBytes = 8 + 4 + 4 + 4 + 4;

/** footer offset + magic. */
constexpr std::size_t trailerBytes = 8 + 8;

/** Bytes of one block-index entry inside the footer. */
constexpr std::size_t indexEntryBytes = 8 + 8 + 8 + 8 + 8;

/** Columns covered by a zone-map entry: the fixed integer columns
 *  (iteration, analysis, stop) and the fixed double columns
 *  (wall_time, wavefront, predicted, mse). Coefficient columns are
 *  not zone-mapped — no filter predicate ranges over them. These
 *  mirror StoreSchema's fixed column counts (static_asserted where
 *  both are visible). @{ */
constexpr std::size_t zoneIntColumns = 3;
constexpr std::size_t zoneDoubleColumns = 4;
/** @} */

/** Bytes of one per-block zone-map entry (v2+ footers). */
constexpr std::size_t zoneEntryBytes =
    zoneIntColumns * 16 + zoneDoubleColumns * 16;

/** Per-int-column codec id leading a v2 column payload. */
enum class IntCodec : std::uint8_t
{
    /** Delta + zigzag LEB128 varints (the v1 encoding). */
    DeltaVarint = 0,
    /** Sorted value dictionary + bit-packed indices (TrailDB's
     *  trail_encode_model dictionary-build pass); wins on
     *  low-cardinality columns like analysis id. */
    Dict = 1,
    /** (value, run length) pairs; wins on long constant runs like
     *  the stop flag. */
    Rle = 2,
};

/** One footer block-index entry. */
struct BlockInfo
{
    /** Absolute file offset of the block. */
    std::uint64_t offset = 0;
    /** Block size in bytes, CRC included. */
    std::uint64_t size = 0;
    /** Records encoded in the block. */
    std::uint64_t records = 0;
    /** Iteration of the block's first / last record (random access
     *  by iteration range). @{ */
    std::int64_t firstIter = 0;
    std::int64_t lastIter = 0;
    /** @} */
};

/**
 * One footer zone-map entry (v2+): per-column min/max over the
 * block's records, the pushdown side of the query engine. Doubles
 * exclude NaNs; a column with no finite-or-infinite value stores
 * min > max, which no range predicate can overlap.
 */
struct BlockZone
{
    std::int64_t intMin[zoneIntColumns] = {0, 0, 0};
    std::int64_t intMax[zoneIntColumns] = {0, 0, 0};
    double dblMin[zoneDoubleColumns] = {0, 0, 0, 0};
    double dblMax[zoneDoubleColumns] = {0, 0, 0, 0};
};

} // namespace store

} // namespace tdfe

#endif // TDFE_STORE_FORMAT_HH
