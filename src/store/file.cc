#include "store/file.hh"

#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "base/logging.hh"

namespace tdfe
{

namespace store
{

namespace
{

IoError
errnoError(int code, std::uint64_t offset, const std::string &what)
{
    IoError e;
    e.code = code != 0 ? code : EIO;
    e.offset = offset;
    e.message = what + " at offset " + std::to_string(offset) +
                ": " + std::strerror(e.code);
    return e;
}

/**
 * Production file: stdio-buffered writes over a POSIX descriptor.
 * Stdio keeps the per-seal write cheap under DurabilityPolicy::None
 * (blocks coalesce in user space) while fileno() gives the real
 * descriptor for fsync and ftruncate. Every error is reported as a
 * value with the exact failing offset.
 */
class OsFile final : public StoreFile
{
  public:
    OsFile(std::FILE *fp, std::string path)
        : fp_(fp), path_(std::move(path))
    {
    }

    ~OsFile() override { close(); }

    IoError
    write(const void *data, std::size_t n) override
    {
        if (!fp_)
            return errnoError(EBADF, offset_, "write to closed file");
        errno = 0;
        const std::size_t wrote = std::fwrite(data, 1, n, fp_);
        offset_ += wrote;
        if (wrote != n) {
            IoError e = errnoError(errno, offset_, "short write (" +
                                       std::to_string(wrote) + "/" +
                                       std::to_string(n) + " bytes)");
            // Clear the stream error so a truncate-and-rewrite retry
            // is possible; the error has been captured as a value.
            std::clearerr(fp_);
            return e;
        }
        return IoError();
    }

    IoError
    flush() override
    {
        if (!fp_)
            return errnoError(EBADF, offset_, "flush of closed file");
        errno = 0;
        if (std::fflush(fp_) != 0) {
            IoError e = errnoError(errno, offset_, "flush failed");
            std::clearerr(fp_);
            return e;
        }
        return IoError();
    }

    IoError
    sync() override
    {
        IoError e = flush();
        if (!e.ok())
            return e;
        errno = 0;
        if (::fsync(fileno(fp_)) != 0)
            return errnoError(errno, offset_, "fsync failed");
        return IoError();
    }

    IoError
    truncateTo(std::uint64_t size) override
    {
        if (!fp_)
            return errnoError(EBADF, offset_,
                              "truncate of closed file");
        // Drop whatever stdio still buffers (it may be exactly the
        // bytes being rolled back), cut the kernel file, reseek.
        std::clearerr(fp_);
        std::fflush(fp_); // best effort; ftruncate defines the size
        errno = 0;
        if (::ftruncate(fileno(fp_),
                        static_cast<off_t>(size)) != 0)
            return errnoError(errno, offset_, "ftruncate failed");
        if (std::fseek(fp_, static_cast<long>(size), SEEK_SET) != 0)
            return errnoError(errno, offset_, "seek failed");
        offset_ = size;
        return IoError();
    }

    IoError
    close() override
    {
        if (!fp_)
            return IoError();
        errno = 0;
        const int rc = std::fclose(fp_);
        fp_ = nullptr;
        if (rc != 0)
            return errnoError(errno, offset_, "close failed");
        return IoError();
    }

    std::uint64_t offset() const override { return offset_; }
    const std::string &path() const override { return path_; }

  private:
    std::FILE *fp_;
    std::string path_;
    std::uint64_t offset_ = 0;
};

/**
 * Production read file: pread over one descriptor, so concurrent
 * cursors never race on a shared file position.
 */
class OsReadFile final : public ReadFile
{
  public:
    OsReadFile(int fd, std::uint64_t size, std::string path)
        : fd_(fd), size_(size), path_(std::move(path))
    {
    }

    ~OsReadFile() override { ::close(fd_); }

    IoError
    readAt(std::uint64_t offset, void *dst,
           std::size_t n) const override
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        std::size_t done = 0;
        while (done < n) {
            errno = 0;
            const ssize_t got =
                ::pread(fd_, out + done, n - done,
                        static_cast<off_t>(offset + done));
            if (got > 0) {
                done += static_cast<std::size_t>(got);
                continue;
            }
            if (got < 0 && errno == EINTR)
                continue;
            if (got == 0)
                return errnoError(EIO, offset + done,
                                  "short read (" +
                                      std::to_string(done) + "/" +
                                      std::to_string(n) +
                                      " bytes)");
            return errnoError(errno, offset + done, "read failed");
        }
        return IoError();
    }

    std::uint64_t size() const override { return size_; }
    const std::string &path() const override { return path_; }

  private:
    int fd_;
    std::uint64_t size_;
    std::string path_;
};

} // namespace

DurabilityPolicy
parseDurabilityPolicy(const std::string &name)
{
    if (name == "none")
        return DurabilityPolicy::None;
    if (name == "flush")
        return DurabilityPolicy::FlushPerSeal;
    if (name == "fsync")
        return DurabilityPolicy::SyncPerSeal;
    TDFE_FATAL("unknown store durability policy '", name,
               "' (expected none, flush, or fsync)");
}

const char *
durabilityPolicyName(DurabilityPolicy policy)
{
    switch (policy) {
      case DurabilityPolicy::None:
        return "none";
      case DurabilityPolicy::FlushPerSeal:
        return "flush";
      case DurabilityPolicy::SyncPerSeal:
        return "fsync";
    }
    return "?";
}

std::unique_ptr<StoreFile>
openOsFile(const std::string &path, IoError *error)
{
    errno = 0;
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (!fp) {
        if (error)
            *error = errnoError(errno, 0, "cannot open " + path);
        return nullptr;
    }
    return std::make_unique<OsFile>(fp, path);
}

std::unique_ptr<ReadFile>
openOsReadFile(const std::string &path, IoError *error)
{
    errno = 0;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (error)
            *error = errnoError(errno, 0, "cannot open " + path);
        return nullptr;
    }
    errno = 0;
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
        if (error)
            *error = errnoError(errno, 0, "cannot size " + path);
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<OsReadFile>(
        fd, static_cast<std::uint64_t>(size), path);
}

std::unique_ptr<ReadFile>
openReadFileVia(const ReadFileFactory &factory,
                const std::string &path, IoError *error)
{
    if (factory)
        return factory(path, error);
    return openOsReadFile(path, error);
}

FaultyReadFile::FaultyReadFile(std::unique_ptr<ReadFile> inner,
                               ReadFaultPlan plan)
    : inner_(std::move(inner)), plan_(plan),
      remaining_(plan.failCount)
{
    TDFE_ASSERT(inner_, "FaultyReadFile needs an underlying file");
}

IoError
FaultyReadFile::readAt(std::uint64_t offset, void *dst,
                       std::size_t n) const
{
    if (plan_.kind == ReadFaultPlan::Kind::ErrorAt &&
        offset + n > plan_.atByte &&
        remaining_.load(std::memory_order_relaxed) > 0 &&
        remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
        std::uint64_t at = offset;
        if (plan_.shortRead && offset < plan_.atByte) {
            const std::size_t fwd =
                static_cast<std::size_t>(plan_.atByte - offset);
            const IoError e = inner_->readAt(offset, dst, fwd);
            if (!e.ok())
                return e;
            at = plan_.atByte;
        }
        IoError e;
        e.code = plan_.errCode;
        e.offset = at;
        e.message = "injected read " +
                    std::string(std::strerror(plan_.errCode)) +
                    " at offset " + std::to_string(at);
        return e;
    }
    return inner_->readAt(offset, dst, n);
}

FaultyFile::FaultyFile(std::unique_ptr<StoreFile> inner,
                       FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan),
      remaining_(plan.failCount)
{
    TDFE_ASSERT(inner_, "FaultyFile needs an underlying file");
}

IoError
FaultyFile::write(const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);

    if (plan_.kind == FaultPlan::Kind::Crash) {
        // The crash point: forward the honest prefix, drop the rest,
        // and keep reporting success — the writer must not be able
        // to tell (a crashed node never gets an error code either).
        if (offset_ < plan_.atByte) {
            const std::size_t fwd = static_cast<std::size_t>(
                std::min<std::uint64_t>(n, plan_.atByte - offset_));
            const IoError e = inner_->write(bytes, fwd);
            if (!e.ok())
                return e;
        }
        offset_ += n;
        return IoError();
    }

    if (plan_.kind == FaultPlan::Kind::ErrorAt && remaining_ > 0 &&
        offset_ + n > plan_.atByte) {
        --remaining_;
        if (plan_.shortWrite && offset_ < plan_.atByte) {
            const std::size_t fwd = static_cast<std::size_t>(
                plan_.atByte - offset_);
            const IoError e = inner_->write(bytes, fwd);
            if (!e.ok())
                return e;
            offset_ += fwd;
        }
        IoError e;
        e.code = plan_.errCode;
        e.offset = offset_;
        e.message = "injected " +
                    std::string(std::strerror(plan_.errCode)) +
                    " at offset " + std::to_string(e.offset);
        return e;
    }

    const IoError e = inner_->write(bytes, n);
    if (e.ok())
        offset_ += n;
    return e;
}

IoError
FaultyFile::flush()
{
    if (plan_.kind == FaultPlan::Kind::Crash)
        return IoError(); // the lying kernel again
    return inner_->flush();
}

IoError
FaultyFile::sync()
{
    if (plan_.kind == FaultPlan::Kind::Crash)
        return IoError();
    return inner_->sync();
}

IoError
FaultyFile::truncateTo(std::uint64_t size)
{
    if (plan_.kind == FaultPlan::Kind::Crash) {
        // Nothing past the crash mark ever reached the inner file;
        // cutting the logical position is all there is to do.
        offset_ = size;
        if (size < plan_.atByte)
            return inner_->truncateTo(size);
        return IoError();
    }
    const IoError e = inner_->truncateTo(size);
    if (e.ok())
        offset_ = size;
    return e;
}

IoError
FaultyFile::close()
{
    return inner_->close();
}

} // namespace store

} // namespace tdfe
