/**
 * @file
 * Read-side query engine of the feature trace store: a composable
 * record filter (iteration window × analysis id × stop flag ×
 * range predicates over the fixed metric columns) and a streaming
 * cursor that evaluates it with block pushdown. Every clause is
 * checked twice — once per block against the footer's zone map
 * (min/max per column), once per record against the decoded values
 * — and the block-level check is conservative: a block is decoded
 * unless the statistics *prove* no record in it can match. Blocks
 * the zone map rules out are never read off disk at all (the
 * reader fetches blocks on demand), which is where the selective-
 * scan speedup in PERF.md comes from.
 *
 * NaN semantics: a record whose metric value is NaN never matches
 * any predicate over that column, `!=` included. This mirrors the
 * zone map, which excludes NaNs from min/max — the two layers must
 * agree or pushdown would change query results. Callers who want
 * NaN rows query without a predicate on that column and inspect
 * the records themselves.
 */

#ifndef TDFE_STORE_QUERY_HH
#define TDFE_STORE_QUERY_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "store/feature_record.hh"
#include "store/reader.hh"

namespace tdfe
{

/** Comparison operator of a metric predicate. */
enum class PredOp
{
    Lt, ///< <
    Le, ///< <=
    Gt, ///< >
    Ge, ///< >=
    Eq, ///< ==
    Ne, ///< !=
};

/**
 * One range predicate over a fixed metric (double) column:
 * `column <op> value`. Coefficient columns are not addressable —
 * no zone statistics exist for them (see format.hh).
 */
struct MetricPredicate
{
    /** Fixed double column index (see metricColumnIndex). */
    std::size_t column = 0;
    PredOp op = PredOp::Lt;
    double value = 0.0;

    /** Record-level test. NaN @p v never matches (see file doc). */
    bool matches(double v) const;

    /**
     * Block-level test against the zone interval [@p lo, @p hi]
     * (NaN-free by construction; lo > hi encodes the empty
     * interval). @return false only when no value in the interval
     * can satisfy the predicate — then the block is skipped.
     */
    bool feasible(double lo, double hi) const;
};

/** @return fixed metric column index of @p name ("wall_time",
 *  "wavefront", "predicted", "mse"), or SIZE_MAX when unknown. */
std::size_t metricColumnIndex(const std::string &name);

/**
 * Parse "col<op>value" (e.g. "mse<0.5", "wavefront>=12") into
 * @p out. Accepted operators: <= >= < > == != (and = for ==).
 * @return false with a diagnostic in @p error on bad input.
 */
bool parseMetricPredicate(const std::string &text,
                          MetricPredicate &out,
                          std::string *error = nullptr);

/**
 * Conjunction of filter clauses; default-constructed matches every
 * record. Build fluently:
 *
 *   EventFilter f = EventFilter()
 *       .iterRange(1000, 2000)
 *       .analysisIs(3)
 *       .where({metricColumnIndex("mse"), PredOp::Lt, 1e-3});
 */
struct EventFilter
{
    /** Iteration window [iterBegin, iterEnd). @{ */
    std::int64_t iterBegin = std::numeric_limits<std::int64_t>::min();
    std::int64_t iterEnd = std::numeric_limits<std::int64_t>::max();
    /** @} */
    /** Exact analysis id (active when hasAnalysis). @{ */
    bool hasAnalysis = false;
    std::int64_t analysis = 0;
    /** @} */
    /** Exact stop-flag value (active when hasStop). @{ */
    bool hasStop = false;
    bool stop = false;
    /** @} */
    /** Metric predicates, ANDed. */
    std::vector<MetricPredicate> predicates;

    EventFilter &
    iterRange(std::int64_t begin, std::int64_t end)
    {
        iterBegin = begin;
        iterEnd = end;
        return *this;
    }

    EventFilter &
    analysisIs(std::int64_t id)
    {
        hasAnalysis = true;
        analysis = id;
        return *this;
    }

    EventFilter &
    stopIs(bool v)
    {
        hasStop = true;
        stop = v;
        return *this;
    }

    EventFilter &
    where(MetricPredicate p)
    {
        predicates.push_back(p);
        return *this;
    }

    /** Record-level evaluation (the reference semantics every
     *  pushdown path must agree with). */
    bool matches(const FeatureRecord &r) const;
};

/**
 * Streaming filtered scan over one reader. Decodes a block only
 * when the filter's block-level checks cannot rule it out: the
 * iteration window prunes via the tightest known per-block bounds,
 * and on zone-mapped stores (v2 footers, any salvaged store) the
 * analysis/stop/metric clauses prune via the per-column min/max.
 * On an iteration-sorted store the scan also stops at the first
 * block past the window.
 *
 * Results are exactly the records a full scan filtered through
 * EventFilter::matches would yield, in store order. Not
 * thread-safe; create one QueryCursor per thread (the shared
 * reader is safe to scan concurrently). The reader must outlive
 * the cursor.
 */
class QueryCursor
{
  public:
    QueryCursor(const FeatureStoreReader &reader, EventFilter filter);

    /** Decode the next matching record into @p out.
     *  @return false once the store is exhausted. */
    bool next(FeatureRecord &out);

    /** @return blocks this cursor decoded so far (its share of the
     *  reader's blocksDecoded()). */
    std::size_t blocksDecoded() const { return decoded_; }

  private:
    /** @return true unless block @p b provably holds no match. */
    bool blockMayMatch(std::size_t b) const;

    const FeatureStoreReader *reader_;
    EventFilter filter_;
    std::size_t block_ = 0; ///< next block to consider
    std::size_t pos_ = 0;   ///< next record within the scratch
    std::size_t count_ = 0; ///< records in the scratch
    std::size_t decoded_ = 0;
    std::vector<std::uint8_t> raw_;
    std::vector<std::vector<std::int64_t>> ints_;
    std::vector<std::vector<double>> dbls_;
};

} // namespace tdfe

#endif // TDFE_STORE_QUERY_HH
