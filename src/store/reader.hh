/**
 * @file
 * Indexed reader of the feature trace store. The whole file is
 * loaded into memory at open (stores are orders of magnitude
 * smaller than the traces they replace — that is the point), the
 * footer index is parsed and CRC-checked, and records are decoded
 * block-at-a-time into caller-owned scratch: a cursor re-fills its
 * columnar decode buffers in place, so steady-state iteration
 * allocates nothing, matching the packed-layout conventions of the
 * training hot path.
 *
 * Error model: open() and verify() report malformed input
 * gracefully (a store file is user data, and tdfstool must be able
 * to diagnose it); decoding through a cursor treats corruption as
 * fatal, exactly like a corrupt checkpoint — by then the caller has
 * asked for values that do not exist.
 */

#ifndef TDFE_STORE_READER_HH
#define TDFE_STORE_READER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/feature_record.hh"
#include "store/format.hh"

namespace tdfe
{

/** Read-only view of one store file. */
class FeatureStoreReader
{
  public:
    /**
     * Open @p path: load the file, validate header, trailer, and
     * footer CRC, and parse the block index + schema.
     * @return nullptr on any malformation, with a diagnostic in
     *         @p error when given.
     */
    static std::unique_ptr<FeatureStoreReader>
    open(const std::string &path, std::string *error = nullptr);

    /**
     * Recover what a damaged store still holds. Requires only an
     * intact header: scans forward from it, structurally walking
     * and CRC-checking (and fully decoding) one block after
     * another, and reconstructs the index from the blocks that
     * survive; the scan stops at the first byte that does not parse
     * as a valid block — exactly the sealed prefix an interrupted
     * writer leaves behind. Column names are rebuilt from the
     * schema (they are deterministic), and the sorted flag is
     * recomputed from the recovered records, so a salvaged reader
     * behaves identically to a footer-backed one over the same
     * blocks. @return nullptr (diagnostic in @p error) only when
     * not even the header survives.
     */
    static std::unique_ptr<FeatureStoreReader>
    salvage(const std::string &path, std::string *error = nullptr);

    /**
     * open(), falling back to salvage() when the footer path fails
     * — and also when the footer is intact but verify() finds a
     * corrupt block, so the result is always fully decodable (a
     * cursor over it cannot hit the fatal corruption path). Used by
     * the skip-policy rank merge. @p was_salvaged reports which
     * path produced the reader.
     */
    static std::unique_ptr<FeatureStoreReader>
    openOrSalvage(const std::string &path,
                  std::string *error = nullptr,
                  bool *was_salvaged = nullptr);

    /** @return column layout recorded in the footer. */
    const StoreSchema &schema() const { return schema_; }

    /** @return total records across all blocks. */
    std::size_t recordCount() const { return records_; }

    /** @return number of blocks. */
    std::size_t blockCount() const { return index.size(); }

    /** @return footer index entry of block @p b. */
    const store::BlockInfo &blockInfo(std::size_t b) const
    {
        return index[b];
    }

    /** @return records-per-block capacity from the header. */
    std::size_t blockCapacity() const { return capacity_; }

    /** @return file size in bytes. */
    std::size_t fileBytes() const { return file.size(); }

    /** @return column names as recorded in the footer (ints then
     *  doubles). */
    const std::vector<std::string> &columnNames() const
    {
        return names_;
    }

    /**
     * @return true when the producer appended records in
     * nondecreasing iteration order (footer flag, cross-checked
     * against the block boundaries), enabling block-index random
     * access by iteration; rank-merged stores are typically not
     * sorted and range queries fall back to a sequential scan.
     */
    bool sortedByIteration() const { return sorted_; }

    /** @return true when this reader was built by salvage() (no
     *  trusted footer; the index was reconstructed by scanning). */
    bool salvaged() const { return salvaged_; }

    /** @return file bytes past the last recovered block that the
     *  salvage scan discarded (0 for a footer-backed open: there
     *  the footer+trailer account for every byte). */
    std::size_t droppedTailBytes() const { return droppedTail_; }

    /**
     * Walk every block: bounds, CRC, and full column decode.
     * @return true when the whole store is intact; otherwise false
     *         with a diagnostic in @p detail when given.
     */
    bool verify(std::string *detail = nullptr) const;

    /**
     * Sequential decoder. Obtain via cursor()/cursorAt(); the
     * reader must outlive it. Not thread-safe; create one cursor
     * per thread for parallel scans.
     */
    class Cursor
    {
      public:
        /**
         * Decode the next record into @p out (coeffs resized to the
         * schema). @return false at end-of-store. Fatal on a
         * corrupt block.
         */
        bool next(FeatureRecord &out);

      private:
        friend class FeatureStoreReader;
        explicit Cursor(const FeatureStoreReader &r) : reader(&r) {}

        /** Decode block @p b into the columnar scratch. */
        void fill(std::size_t b);

        const FeatureStoreReader *reader;
        std::size_t block = 0; ///< next block to decode
        std::size_t pos = 0;   ///< next record within the scratch
        std::size_t count = 0; ///< records in the scratch
        std::vector<std::vector<std::int64_t>> ints;
        std::vector<std::vector<double>> dbls;
    };

    /** @return cursor at the first record. */
    Cursor cursor() const { return Cursor(*this); }

    /**
     * @return cursor positioned at the first block that may contain
     * iteration @p iter_begin (block-index binary search when the
     * store is iteration-sorted; block 0 otherwise). Records before
     * @p iter_begin inside that block are not skipped — use
     * readRange() for exact windows.
     */
    Cursor cursorAt(std::int64_t iter_begin) const;

    /**
     * Append every record with iteration in [@p iter_begin,
     * @p iter_end) to @p out, using the block index to skip
     * non-overlapping blocks when the store is iteration-sorted.
     * @return number of records appended.
     */
    std::size_t readRange(std::int64_t iter_begin,
                          std::int64_t iter_end,
                          std::vector<FeatureRecord> &out) const;

  private:
    FeatureStoreReader() = default;

    /**
     * Decode block @p b into columnar scratch. @return false with a
     * diagnostic in @p detail on corruption (CRC mismatch, bad
     * column bytes, shape skew).
     */
    bool decodeBlock(std::size_t b,
                     std::vector<std::vector<std::int64_t>> &ints,
                     std::vector<std::vector<double>> &dbls,
                     std::string *detail) const;

    std::vector<std::uint8_t> file;
    StoreSchema schema_;
    std::vector<store::BlockInfo> index;
    std::vector<std::string> names_;
    /** Load @p path and validate the fixed header into @p reader.
     *  Shared by open() and salvage(). @return false with a
     *  diagnostic in @p error on failure. */
    static bool loadAndCheckHeader(
        const std::string &path, FeatureStoreReader &reader,
        std::uint32_t &n_int, std::uint32_t &n_dbl,
        std::string *error);

    std::size_t records_ = 0;
    std::size_t capacity_ = 0;
    bool sorted_ = true;
    bool salvaged_ = false;
    std::size_t droppedTail_ = 0;
};

} // namespace tdfe

#endif // TDFE_STORE_READER_HH
