/**
 * @file
 * Indexed reader of the feature trace store. open() reads only the
 * header, the footer index, and the trailer; block payloads are
 * fetched on demand, one pread per decoded block, through the same
 * store::ReadFile seam the writer uses on its side — so a filtered
 * query that the zone map prunes to three blocks reads three blocks
 * off disk, not the file. Records decode block-at-a-time into
 * caller-owned scratch: a cursor re-fills its columnar decode
 * buffers in place, so steady-state iteration allocates nothing,
 * matching the packed-layout conventions of the training hot path.
 * Cursors may run concurrently (one per thread): the reader's state
 * is immutable after open and ReadFile::readAt is thread-safe.
 *
 * Error model: open() and verify() report malformed input
 * gracefully (a store file is user data, and tdfstool must be able
 * to diagnose it); decoding through a cursor treats corruption as
 * fatal, exactly like a corrupt checkpoint — by then the caller has
 * asked for values that do not exist.
 */

#ifndef TDFE_STORE_READER_HH
#define TDFE_STORE_READER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/feature_record.hh"
#include "store/file.hh"
#include "store/format.hh"

namespace tdfe
{

class QueryCursor;

/** Read-only view of one store file. */
class FeatureStoreReader
{
  public:
    /**
     * Open @p path: read and validate header, trailer, and footer
     * (CRC-checked), and parse the block index, zone map (v2+), and
     * schema. Block data stays on disk until a cursor asks for it.
     * A zero-block store (header + footer, no sealed blocks — what
     * a writer that never filled a block finishes into) is valid
     * and opens as an empty reader. @p file_factory interposes on
     * the underlying open/read (fault injection; empty: OS files).
     * @return nullptr on any malformation, with a diagnostic in
     *         @p error when given.
     */
    static std::unique_ptr<FeatureStoreReader>
    open(const std::string &path, std::string *error = nullptr,
         const store::ReadFileFactory &file_factory = {});

    /**
     * Recover what a damaged store still holds. Requires only an
     * intact header: scans forward from it, structurally walking
     * and CRC-checking (and fully decoding) one block after
     * another, and reconstructs the index from the blocks that
     * survive; the scan stops at the first byte that does not parse
     * as a valid block — exactly the sealed prefix an interrupted
     * writer leaves behind. Column names are rebuilt from the
     * schema (they are deterministic), the sorted flag is recomputed
     * from the recovered records, and the zone map is rebuilt from
     * the decoded blocks, so a salvaged reader behaves identically
     * to a footer-backed one over the same blocks — filtered-query
     * pushdown included. @return nullptr (diagnostic in @p error)
     * only when not even the header survives.
     */
    static std::unique_ptr<FeatureStoreReader>
    salvage(const std::string &path, std::string *error = nullptr,
            const store::ReadFileFactory &file_factory = {});

    /**
     * open(), falling back to salvage() when the footer path fails
     * — and also when the footer is intact but verify() finds a
     * corrupt block, so the result is always fully decodable (a
     * cursor over it cannot hit the fatal corruption path). Used by
     * the skip-policy rank merge. @p was_salvaged reports which
     * path produced the reader.
     */
    static std::unique_ptr<FeatureStoreReader>
    openOrSalvage(const std::string &path,
                  std::string *error = nullptr,
                  bool *was_salvaged = nullptr,
                  const store::ReadFileFactory &file_factory = {});

    /** @return column layout recorded in the footer. */
    const StoreSchema &schema() const { return schema_; }

    /** @return on-disk format version (1: no zone map, delta-varint
     *  integer columns; 2: zone-mapped, per-block codec choice). */
    std::uint32_t formatVersion() const { return version_; }

    /** @return total records across all blocks. */
    std::size_t recordCount() const { return records_; }

    /** @return number of blocks. */
    std::size_t blockCount() const { return index.size(); }

    /** @return footer index entry of block @p b. */
    const store::BlockInfo &blockInfo(std::size_t b) const
    {
        return index[b];
    }

    /**
     * @return zone-map entry of block @p b, or nullptr when the
     * store carries none (v1 footer-backed opens — salvage rebuilds
     * zones for both versions). Pushdown treats a missing zone map
     * as "may match": only the always-present per-block iteration
     * bounds prune then.
     */
    const store::BlockZone *zone(std::size_t b) const
    {
        return zones_.empty() ? nullptr : &zones_[b];
    }

    /** @return records-per-block capacity from the header. */
    std::size_t blockCapacity() const { return capacity_; }

    /** @return file size in bytes (0 for the fileless empty reader
     *  a live view pins before the store's first block exists). */
    std::size_t fileBytes() const
    {
        return file_ ? static_cast<std::size_t>(file_->size()) : 0;
    }

    /** @return column names as recorded in the footer (ints then
     *  doubles). */
    const std::vector<std::string> &columnNames() const
    {
        return names_;
    }

    /**
     * @return true when the producer appended records in
     * nondecreasing iteration order (footer flag, cross-checked
     * against the block boundaries), enabling block-index binary
     * search and early exit in range queries. Unsorted stores (e.g.
     * legacy rank-concatenated merges) still prune per block via
     * the index's iteration bounds — they only lose the early exit.
     */
    bool sortedByIteration() const { return sorted_; }

    /** @return true when this reader was built by salvage() (no
     *  trusted footer; the index was reconstructed by scanning). */
    bool salvaged() const { return salvaged_; }

    /** @return file bytes past the last recovered block that the
     *  salvage scan discarded (0 for a footer-backed open: there
     *  the footer+trailer account for every byte). */
    std::size_t droppedTailBytes() const { return droppedTail_; }

    /**
     * Blocks decoded through this reader since open (or the last
     * resetIoStats), summed over all cursors — the observable the
     * pushdown gates measure: a selective query over a cold reader
     * must leave this well below blockCount(). @{
     */
    std::size_t
    blocksDecoded() const
    {
        return blocksDecoded_.load(std::memory_order_relaxed);
    }
    void
    resetIoStats() const
    {
        blocksDecoded_.store(0, std::memory_order_relaxed);
    }
    /** @} */

    /**
     * Walk every block: bounds, CRC, full column decode, and (when
     * a zone map is present) zone-entry agreement with the decoded
     * min/max. @return true when the whole store is intact;
     * otherwise false with a diagnostic in @p detail when given.
     */
    bool verify(std::string *detail = nullptr) const;

    /**
     * Sequential decoder. Obtain via cursor()/cursorAt(); the
     * reader must outlive it. Not thread-safe; create one cursor
     * per thread for parallel scans.
     */
    class Cursor
    {
      public:
        /**
         * Decode the next record into @p out (coeffs resized to the
         * schema). @return false at end-of-store. Fatal on a
         * corrupt block.
         */
        bool next(FeatureRecord &out);

      private:
        friend class FeatureStoreReader;
        explicit Cursor(const FeatureStoreReader &r) : reader(&r) {}

        /** Decode block @p b into the columnar scratch. */
        void fill(std::size_t b);

        const FeatureStoreReader *reader;
        std::size_t block = 0; ///< next block to decode
        std::size_t pos = 0;   ///< next record within the scratch
        std::size_t count = 0; ///< records in the scratch
        std::vector<std::uint8_t> raw;
        std::vector<std::vector<std::int64_t>> ints;
        std::vector<std::vector<double>> dbls;
    };

    /** @return cursor at the first record. */
    Cursor cursor() const { return Cursor(*this); }

    /**
     * @return cursor positioned at the first record of block @p b
     * (end-of-store when @p b >= blockCount()). Blocks are sealed
     * immutably, so a tail reader that consumed blocks [0, b) of an
     * earlier snapshot resumes a newer snapshot of the same store
     * here without re-decoding anything.
     */
    Cursor
    cursorAtBlock(std::size_t b) const
    {
        Cursor c(*this);
        c.block = b;
        return c;
    }

    /**
     * @return cursor positioned at the first block that may contain
     * iteration @p iter_begin (block-index binary search when the
     * store is iteration-sorted; block 0 otherwise). Records before
     * @p iter_begin inside that block are not skipped — use
     * readRange() for exact windows.
     */
    Cursor cursorAt(std::int64_t iter_begin) const;

    /**
     * Append every record with iteration in [@p iter_begin,
     * @p iter_end) to @p out. Blocks whose iteration bounds do not
     * overlap the window are neither read nor decoded. Exact bounds
     * come from the zone map when present (v2, or any salvaged
     * store) and from the index's first/last iterations when the
     * store is sorted; only a v1 footer-backed unsorted store has
     * no per-block bounds and decodes everything. Sortedness
     * additionally buys the binary-searched start block and the
     * early exit. @return records appended.
     */
    std::size_t readRange(std::int64_t iter_begin,
                          std::int64_t iter_end,
                          std::vector<FeatureRecord> &out) const;

  private:
    FeatureStoreReader() = default;

    friend class QueryCursor;
    /** Builds footerless snapshot readers from a live manifest. */
    friend class LiveStoreReader;

    /**
     * Read block @p b off disk into @p raw and decode it into
     * columnar scratch. @return false with a diagnostic in
     * @p detail on corruption (CRC mismatch, bad column bytes,
     * shape skew). Thread-safe: all reader state touched is
     * immutable or atomic.
     */
    bool decodeBlock(std::size_t b, std::vector<std::uint8_t> &raw,
                     std::vector<std::vector<std::int64_t>> &ints,
                     std::vector<std::vector<double>> &dbls,
                     std::string *detail) const;

    /** Decode @p raw (already loaded block bytes) as block @p b. */
    bool decodeBlockBytes(
        std::size_t b, const std::uint8_t *raw,
        std::vector<std::vector<std::int64_t>> &ints,
        std::vector<std::vector<double>> &dbls,
        std::string *detail) const;

    /** Copy record @p i of decoded columns into @p out. */
    static void
    materialize(const StoreSchema &schema,
                const std::vector<std::vector<std::int64_t>> &ints,
                const std::vector<std::vector<double>> &dbls,
                std::size_t i, FeatureRecord &out);

    /**
     * Tightest known iteration bounds of block @p b: the zone map's
     * min/max when present, else the index's first/last iteration
     * when the store is sorted (then they coincide with min/max).
     * @return false when no bound is known (v1 footer-backed
     * unsorted store) — the caller must decode the block.
     */
    bool blockIterBounds(std::size_t b, std::int64_t &lo,
                         std::int64_t &hi) const;

    std::unique_ptr<store::ReadFile> file_;
    StoreSchema schema_;
    std::vector<store::BlockInfo> index;
    std::vector<store::BlockZone> zones_;
    std::vector<std::string> names_;
    /** Open @p path (through @p file_factory when nonempty) and
     *  validate the fixed header into @p reader. Shared by open(),
     *  salvage(), and the live attach path. @return false with a
     *  diagnostic in @p error on failure. */
    static bool loadAndCheckHeader(
        const std::string &path, FeatureStoreReader &reader,
        std::uint32_t &n_int, std::uint32_t &n_dbl,
        std::string *error,
        const store::ReadFileFactory &file_factory);

    std::uint32_t version_ = store::formatVersion;
    std::size_t records_ = 0;
    std::size_t capacity_ = 0;
    bool sorted_ = true;
    bool salvaged_ = false;
    std::size_t droppedTail_ = 0;
    mutable std::atomic<std::size_t> blocksDecoded_{0};
};

} // namespace tdfe

#endif // TDFE_STORE_READER_HH
