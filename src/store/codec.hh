/**
 * @file
 * Column encodings of the feature store, TrailDB-style: integer
 * columns are delta + zigzag LEB128 varints (iteration numbers are
 * near-consecutive, so deltas are tiny), double columns use
 * Gorilla-style XOR packing (consecutive feature values share most
 * mantissa bits, so the XOR is mostly zeros), and every block is
 * sealed with a CRC-32 so corruption is detected instead of decoded.
 *
 * All encodings are bit-exact: decoding returns the original 64-bit
 * patterns, including NaN payloads and signed zeros. Byte order is
 * little-endian (see base/portable.hh).
 */

#ifndef TDFE_STORE_CODEC_HH
#define TDFE_STORE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "store/format.hh"

namespace tdfe
{

namespace store
{

/** CRC-32 (IEEE 802.3, poly 0xEDB88320) of @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/** Zigzag mapping: small-magnitude signed -> small unsigned. @{ */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}
/** @} */

/** Little-endian scalar appends used by block/footer builders. @{ */
void putU32(std::vector<std::uint8_t> &out, std::uint32_t v);
void putU64(std::vector<std::uint8_t> &out, std::uint64_t v);
void putI64(std::vector<std::uint8_t> &out, std::int64_t v);
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);
/** @} */

/**
 * Bounds-checked sequential reader over an in-memory byte range.
 * Every accessor returns a defined value (zero) once a read has run
 * past the end and latches ok() false — callers validate once at the
 * end of a parse instead of after every field, and truncated files
 * turn into a clean error instead of UB.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    std::uint64_t varint();

    /** Copy @p n raw bytes into @p dst (zeros past the end). */
    void bytes(void *dst, std::size_t n);

    /** Skip @p n bytes. */
    void skip(std::size_t n);

    /** @return bytes left before the end. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    /** @return current read position pointer. */
    const std::uint8_t *cursor() const { return p; }

    /** @return false once any read ran past the end. */
    bool ok() const { return ok_; }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool ok_ = true;
};

/**
 * Delta + zigzag + varint encode @p n integers, appended to @p out.
 * The first value is stored as zigzag(v0); each later one as
 * zigzag(v[i] - v[i-1]).
 */
void encodeIntColumn(const std::int64_t *vals, std::size_t n,
                     std::vector<std::uint8_t> &out);

/**
 * Decode @p n integers from @p len bytes at @p data into @p out.
 * @return false when the bytes are malformed (short or overlong).
 */
bool decodeIntColumn(const std::uint8_t *data, std::size_t len,
                     std::size_t n, std::int64_t *out);

/**
 * Dictionary encoding (v2): varint dictionary size, the sorted
 * distinct values delta-varint encoded, then one bit-packed index
 * per record (ceil(log2(size)) bits, 0 bits for a constant
 * column). Only worthwhile — and only attempted by the trial
 * selector — for low-cardinality columns. @{
 */
void encodeIntColumnDict(const std::int64_t *vals, std::size_t n,
                         std::vector<std::uint8_t> &out);
bool decodeIntColumnDict(const std::uint8_t *data, std::size_t len,
                         std::size_t n, std::int64_t *out);
/** @} */

/**
 * Run-length encoding (v2): (zigzag varint value, varint run
 * length) pairs until @p n records are covered. @{
 */
void encodeIntColumnRle(const std::int64_t *vals, std::size_t n,
                        std::vector<std::uint8_t> &out);
bool decodeIntColumnRle(const std::uint8_t *data, std::size_t len,
                        std::size_t n, std::int64_t *out);
/** @} */

/**
 * v2 integer column encode: trial-encode with every candidate codec
 * and append [u8 codec id][smallest payload] to @p out. Ties break
 * toward the lower codec id, so the choice is deterministic and
 * files stay byte-identical across runs and flush modes.
 */
void encodeIntColumnTagged(const std::int64_t *vals, std::size_t n,
                           std::vector<std::uint8_t> &out);

/**
 * Decode a v2 [codec id][payload] integer column. @return false on
 * an unknown codec id or malformed payload.
 */
bool decodeIntColumnTagged(const std::uint8_t *data,
                           std::size_t len, std::size_t n,
                           std::int64_t *out);

/**
 * Min/max of the zone-mapped columns of one block, computed from
 * columnar values (staged by the writer or decoded by salvage /
 * verify). Requires at least zoneIntColumns integer columns and
 * zoneDoubleColumns double columns, each non-empty. Doubles skip
 * NaNs; an all-NaN column yields the empty interval (+inf, -inf),
 * which no range predicate overlaps. One shared implementation so
 * the footer entry the writer seals, the entry salvage rebuilds,
 * and the entry verify recomputes can never drift apart.
 */
BlockZone computeBlockZone(
    const std::vector<std::vector<std::int64_t>> &ints,
    const std::vector<std::vector<double>> &dbls);

/**
 * Gorilla-style XOR packing of @p n doubles, appended to @p out:
 * the first value is 64 raw bits; each later value XORs against its
 * predecessor — a '0' bit for identical values, otherwise the
 * meaningful (non-zero) window of the XOR, reusing the previous
 * window's bounds when it still fits.
 */
void encodeDoubleColumn(const double *vals, std::size_t n,
                        std::vector<std::uint8_t> &out);

/**
 * Decode @p n doubles from @p len bytes at @p data into @p out
 * (bit-exact). @return false when the bitstream is malformed.
 */
bool decodeDoubleColumn(const std::uint8_t *data, std::size_t len,
                        std::size_t n, double *out);

} // namespace store

} // namespace tdfe

#endif // TDFE_STORE_CODEC_HH
