/**
 * @file
 * The live manifest: a compact CRC-framed sidecar ("<store>.live")
 * the writer republishes atomically (tmp + rename) after sealed
 * blocks, carrying everything a reader needs to serve the sealed
 * prefix of a store that is still being appended to — schema,
 * sealed-block index, zone map, record count, and a monotonically
 * increasing generation. The data file's unsealed tail is never
 * described and therefore never trusted; a reader that pins one
 * manifest sees one immutable prefix, which is what makes live
 * views snapshot-isolated (see live.hh).
 *
 * Layout (little-endian, one frame):
 *
 *   magic "TDFSLIV1" (8)
 *   u32 manifest version, u32 store format version
 *   u64 generation          monotone per publication
 *   u32 flags               bit 0: final (writer finished or
 *                           degraded — no further generations),
 *                           bit 1: writer degraded (the store holds
 *                           only a partial trace)
 *   u32 block capacity, u32 int cols, u32 double cols,
 *   u64 coeff count
 *   u64 block count, u64 record count
 *   u64 data bytes          extent of the sealed prefix in the data
 *                           file (header + all indexed blocks)
 *   u32 sorted flag
 *   per block: the footer's index entry (offset, size, records,
 *              first/last iteration) followed by its zone-map entry
 *   u32 CRC-32 over everything before it
 *
 * The frame is rewritten whole every time; rename() makes each
 * publication atomic, so a reader observes either the previous or
 * the next manifest, never a blend. A torn or half-written frame
 * (possible only under injected faults or non-POSIX semantics)
 * fails the CRC and is ignored — the reader keeps its current
 * snapshot and polls again.
 */

#ifndef TDFE_STORE_MANIFEST_HH
#define TDFE_STORE_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.hh"

namespace tdfe
{

namespace store
{

/** Sidecar magic. */
constexpr char manifestMagic[8] = {'T', 'D', 'F', 'S',
                                   'L', 'I', 'V', '1'};

/** Manifest framing version written by this build. */
constexpr std::uint32_t manifestVersion = 1;

/** LiveManifest::flags bits. @{ */
constexpr std::uint32_t manifestFlagFinal = 1u << 0;
constexpr std::uint32_t manifestFlagDegraded = 1u << 1;
/** @} */

/** @return the sidecar path of @p store_path ("<store>.live"). */
std::string manifestPathFor(const std::string &store_path);

/** In-memory form of one published manifest. */
struct LiveManifest
{
    /** Store format version of the data file (see format.hh). */
    std::uint32_t storeVersion = formatVersion;
    /** Publication counter; strictly increasing per writer. */
    std::uint64_t generation = 0;
    /** manifestFlag* bits. */
    std::uint32_t flags = 0;
    /** Header fields of the data file (readers cross-check). @{ */
    std::uint64_t blockCapacity = 0;
    std::uint32_t intColumns = 0;
    std::uint32_t doubleColumns = 0;
    std::uint64_t coeffCount = 0;
    /** @} */
    /** Records across the indexed blocks. */
    std::uint64_t recordCount = 0;
    /** Sealed-prefix extent in the data file: header + blocks. */
    std::uint64_t dataBytes = 0;
    /** Appends were nondecreasing in iteration. */
    bool sorted = true;
    /** Sealed-block index, exactly the footer's entries. */
    std::vector<BlockInfo> index;
    /** Per-block zone map, parallel to @c index. */
    std::vector<BlockZone> zones;

    bool final() const { return (flags & manifestFlagFinal) != 0; }
    bool
    degraded() const
    {
        return (flags & manifestFlagDegraded) != 0;
    }
};

/** Serialize @p m into @p out (cleared first), CRC frame included. */
void encodeManifest(const LiveManifest &m,
                    std::vector<std::uint8_t> &out);

/**
 * Parse @p n bytes at @p data into @p out. Validates the magic, the
 * framing version, the CRC, and the structural plausibility of the
 * index (blocks tile [headerBytes, dataBytes), record counts agree)
 * — the same paranoia FeatureStoreReader::open applies to footers,
 * because a manifest is user data read mid-write. @return false
 * with a diagnostic in @p error on any malformation.
 */
bool decodeManifest(const std::uint8_t *data, std::size_t n,
                    LiveManifest &out, std::string *error = nullptr);

} // namespace store

} // namespace tdfe

#endif // TDFE_STORE_MANIFEST_HH
