#include "store/reader.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "base/portable.hh"
#include "obs/metrics.hh"
#include "store/codec.hh"

namespace tdfe
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

double
bitsToDouble(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

} // namespace

void
FeatureStoreReader::materialize(
    const StoreSchema &schema,
    const std::vector<std::vector<std::int64_t>> &ints,
    const std::vector<std::vector<double>> &dbls, std::size_t i,
    FeatureRecord &out)
{
    out.iteration = static_cast<long>(ints[0][i]);
    out.analysis = static_cast<long>(ints[1][i]);
    out.stop = ints[2][i] != 0;
    out.wallTime = dbls[0][i];
    out.wavefront = dbls[1][i];
    out.predicted = dbls[2][i];
    out.mse = dbls[3][i];
    out.coeffs.resize(schema.coeffCount);
    for (std::size_t k = 0; k < schema.coeffCount; ++k)
        out.coeffs[k] =
            dbls[StoreSchema::numFixedDoubleColumns + k][i];
}

// The fixed zone-mapped column counts are the schema's fixed column
// counts; this is where both headers are visible.
static_assert(store::zoneIntColumns == StoreSchema::numIntColumns &&
                  store::zoneDoubleColumns ==
                      StoreSchema::numFixedDoubleColumns,
              "zone map must cover exactly the fixed columns");

bool
FeatureStoreReader::loadAndCheckHeader(
    const std::string &path, FeatureStoreReader &reader,
    std::uint32_t &n_int, std::uint32_t &n_dbl, std::string *error,
    const store::ReadFileFactory &file_factory)
{
    auto reject = [&](const std::string &msg) {
        return fail(error, path + ": " + msg);
    };

    store::IoError io;
    reader.file_ = store::openReadFileVia(file_factory, path, &io);
    if (!reader.file_)
        return reject("cannot open: " + io.message);
    if (reader.file_->size() < store::headerBytes)
        return reject("truncated: shorter than the header");
    std::uint8_t header[store::headerBytes];
    io = reader.file_->readAt(0, header, store::headerBytes);
    if (!io.ok())
        return reject("header read failed: " + io.message);

    if (std::memcmp(header, store::headerMagic, 8) != 0)
        return reject("bad header magic (not a feature store)");
    store::ByteReader h(header + 8, store::headerBytes - 8);
    reader.version_ = h.u32();
    if (reader.version_ < store::minSupportedFormatVersion ||
        reader.version_ > store::formatVersion)
        return reject(
            "unsupported format version " +
            std::to_string(reader.version_) + " (this build reads " +
            std::to_string(store::minSupportedFormatVersion) +
            ".." + std::to_string(store::formatVersion) + ")");
    reader.capacity_ = h.u32();
    n_int = h.u32();
    n_dbl = h.u32();
    // File-supplied counts bound every later loop and allocation,
    // so cap them here: a corrupt header must be rejected, not
    // obeyed.
    if (reader.capacity_ == 0 ||
        reader.capacity_ > store::maxBlockCapacity ||
        n_int != StoreSchema::numIntColumns ||
        n_dbl < StoreSchema::numFixedDoubleColumns ||
        n_dbl > store::maxDoubleColumns)
        return reject("implausible header column/capacity counts");
    return true;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::open(const std::string &path, std::string *error,
                         const store::ReadFileFactory &file_factory)
{
    auto reject = [&](const std::string &msg)
        -> std::unique_ptr<FeatureStoreReader> {
        fail(error, path + ": " + msg);
        return nullptr;
    };

    auto reader =
        std::unique_ptr<FeatureStoreReader>(new FeatureStoreReader());
    std::uint32_t n_int = 0;
    std::uint32_t n_dbl = 0;
    if (!loadAndCheckHeader(path, *reader, n_int, n_dbl, error,
                            file_factory))
        return nullptr;
    const std::size_t file_size = reader->fileBytes();
    if (file_size < store::headerBytes + store::trailerBytes)
        return reject("truncated: shorter than header + trailer");

    // Trailer -> footer window. Everything open() needs lives in
    // [footer offset, end); one read fetches it — block data stays
    // on disk until a cursor asks.
    const std::size_t tr = file_size - store::trailerBytes;
    std::uint8_t trailer[store::trailerBytes];
    store::IoError io =
        reader->file_->readAt(tr, trailer, store::trailerBytes);
    if (!io.ok())
        return reject("trailer read failed: " + io.message);
    if (std::memcmp(trailer + 8, store::trailerMagic, 8) != 0)
        return reject("bad trailer magic (truncated store?)");
    store::ByteReader t(trailer, 8);
    const std::uint64_t footer_off = t.u64();
    if (footer_off < store::headerBytes || footer_off > tr)
        return reject("footer offset out of range");
    const std::size_t footer_len =
        tr - static_cast<std::size_t>(footer_off);
    if (footer_len < 4)
        return reject("footer too small");
    std::vector<std::uint8_t> footer(footer_len);
    io = reader->file_->readAt(footer_off, footer.data(), footer_len);
    if (!io.ok())
        return reject("footer read failed: " + io.message);

    // Footer CRC, then parse.
    const std::uint8_t *fp = footer.data();
    store::ByteReader crc_r(fp + footer_len - 4, 4);
    if (store::crc32(fp, footer_len - 4) != crc_r.u32())
        return reject("footer CRC mismatch");
    store::ByteReader r(fp, footer_len - 4);
    const std::uint64_t n_blocks = r.u64();
    // Divide instead of multiplying: n_blocks is file-supplied and
    // a product could wrap past the check.
    if (n_blocks > footer_len / store::indexEntryBytes)
        return reject("footer block count implausible");
    reader->index.resize(static_cast<std::size_t>(n_blocks));
    std::uint64_t record_sum = 0;
    std::uint64_t prev_end = store::headerBytes;
    for (store::BlockInfo &b : reader->index) {
        b.offset = r.u64();
        b.size = r.u64();
        b.records = r.u64();
        b.firstIter = r.i64();
        b.lastIter = r.i64();
        // b.records also bounds decodeBlock's scratch resize, so
        // tie it to the block's actual byte size: the iteration
        // column alone costs >= 1 varint byte per record.
        if (b.offset != prev_end || b.size < 8 ||
            b.offset + b.size > footer_off || b.records == 0 ||
            b.records > reader->capacity_ || b.records > b.size)
            return reject("block index entry out of range");
        prev_end = b.offset + b.size;
        record_sum += b.records;
    }
    if (prev_end != footer_off)
        return reject("blocks do not tile the data section");
    reader->records_ = static_cast<std::size_t>(r.u64());
    if (reader->records_ != record_sum)
        return reject("footer record count disagrees with index");
    reader->sorted_ = r.u32() != 0;
    if (r.u32() != n_int || r.u32() != n_dbl)
        return reject("footer schema disagrees with header");
    reader->schema_.coeffCount =
        static_cast<std::size_t>(r.u64());
    if (reader->schema_.doubleColumns() != n_dbl)
        return reject("coefficient count disagrees with columns");
    for (std::uint32_t i = 0; i < n_int + n_dbl; ++i) {
        const std::uint32_t len = r.u32();
        if (!r.ok() || len > r.remaining())
            return reject("column name overruns footer");
        std::string name(len, '\0');
        r.bytes(name.data(), len);
        reader->names_.push_back(std::move(name));
    }
    if (reader->version_ >= 2) {
        reader->zones_.resize(reader->index.size());
        for (store::BlockZone &z : reader->zones_) {
            for (std::size_t c = 0; c < store::zoneIntColumns; ++c) {
                z.intMin[c] = r.i64();
                z.intMax[c] = r.i64();
            }
            for (std::size_t c = 0; c < store::zoneDoubleColumns;
                 ++c) {
                z.dblMin[c] = bitsToDouble(r.u64());
                z.dblMax[c] = bitsToDouble(r.u64());
            }
        }
    }
    if (!r.ok())
        return reject("footer truncated");

    // Belt and braces: the footer flag must agree with the block
    // boundaries it implies.
    for (std::size_t b = 1; b < reader->index.size(); ++b)
        if (reader->index[b].firstIter <
            reader->index[b - 1].lastIter)
            reader->sorted_ = false;

    return reader;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::salvage(const std::string &path,
                            std::string *error,
                            const store::ReadFileFactory &file_factory)
{
    auto reader =
        std::unique_ptr<FeatureStoreReader>(new FeatureStoreReader());
    std::uint32_t n_int = 0;
    std::uint32_t n_dbl = 0;
    if (!loadAndCheckHeader(path, *reader, n_int, n_dbl, error,
                            file_factory))
        return nullptr;
    reader->salvaged_ = true;
    reader->schema_.coeffCount =
        n_dbl - StoreSchema::numFixedDoubleColumns;
    // Column names never make it into a footerless file, but they
    // are deterministic functions of the schema — rebuild them.
    for (std::uint32_t i = 0; i < n_int; ++i)
        reader->names_.push_back(StoreSchema::intColumnName(i));
    for (std::uint32_t i = 0; i < n_dbl; ++i)
        reader->names_.push_back(
            reader->schema_.doubleColumnName(i));

    // Salvage cannot know block extents up front, so it reads the
    // whole tail once and walks it in memory — the one reader path
    // that still slurps, acceptable for a recovery tool.
    const std::size_t file_size = reader->fileBytes();
    std::vector<std::uint8_t> tail(file_size - store::headerBytes);
    if (!tail.empty()) {
        const store::IoError io = reader->file_->readAt(
            store::headerBytes, tail.data(), tail.size());
        if (!io.ok()) {
            fail(error, path + ": tail read failed: " + io.message);
            return nullptr;
        }
    }

    // Forward scan: keep accepting blocks while the bytes at the
    // cursor parse, CRC-check, AND fully decode as one. The first
    // offset that fails any of those is where the damage starts —
    // a torn block, the beginning of a (possibly corrupt) footer,
    // or plain garbage; everything before it is trusted exactly as
    // much as a footer-backed block (same CRC, same decoders). The
    // zone map is rebuilt from the decoded columns on the way, so
    // pushdown works over salvaged stores of either version.
    const std::uint32_t n_cols = n_int + n_dbl;
    std::vector<std::vector<std::int64_t>> ints;
    std::vector<std::vector<double>> dbls;
    std::int64_t last_iter = 0;
    std::size_t off = 0; // relative to the tail buffer
    for (;;) {
        store::ByteReader r(tail.data() + off, tail.size() - off);
        const std::uint32_t count = r.u32();
        if (!r.ok() || count == 0 || count > reader->capacity_)
            break;
        bool shaped = true;
        for (std::uint32_t c = 0; c < n_cols && shaped; ++c) {
            const std::uint32_t len = r.u32();
            if (!r.ok() || len > r.remaining())
                shaped = false;
            else
                r.skip(len);
        }
        if (!shaped || r.remaining() < 4)
            break;
        const std::size_t size =
            (r.cursor() - (tail.data() + off)) + 4;

        store::BlockInfo info;
        info.offset = store::headerBytes + off;
        info.size = size;
        info.records = count;
        reader->index.push_back(info);
        if (!reader->decodeBlockBytes(reader->index.size() - 1,
                                      tail.data() + off, ints, dbls,
                                      nullptr)) {
            reader->index.pop_back();
            break;
        }
        store::BlockInfo &accepted = reader->index.back();
        accepted.firstIter = ints[0].front();
        accepted.lastIter = ints[0].back();
        reader->zones_.push_back(store::computeBlockZone(ints, dbls));
        for (std::size_t i = 0; i < ints[0].size(); ++i) {
            if (reader->records_ + i > 0 && ints[0][i] < last_iter)
                reader->sorted_ = false;
            last_iter = ints[0][i];
        }
        reader->records_ += count;
        off += size;
    }
    reader->droppedTail_ = tail.size() - off;
    return reader;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::openOrSalvage(
    const std::string &path, std::string *error, bool *was_salvaged,
    const store::ReadFileFactory &file_factory)
{
    std::string open_error;
    auto reader = open(path, &open_error, file_factory);
    if (reader && reader->verify(&open_error)) {
        if (was_salvaged)
            *was_salvaged = false;
        return reader;
    }
    // Footer missing/corrupt, or a footer-indexed block does not
    // decode: fall back to the prefix scan so whatever does decode
    // is still usable (and a cursor cannot hit the fatal path).
    auto recovered = salvage(path, error, file_factory);
    if (!recovered && error && !open_error.empty())
        *error = open_error + "; " + *error;
    if (recovered && was_salvaged)
        *was_salvaged = true;
    return recovered;
}

bool
FeatureStoreReader::decodeBlock(
    std::size_t b, std::vector<std::uint8_t> &raw,
    std::vector<std::vector<std::int64_t>> &ints,
    std::vector<std::vector<double>> &dbls,
    std::string *detail) const
{
    const store::BlockInfo &info = index[b];
    raw.resize(static_cast<std::size_t>(info.size));
    const store::IoError io =
        file_->readAt(info.offset, raw.data(), raw.size());
    if (!io.ok())
        return fail(detail, "block " + std::to_string(b) +
                                ": read failed: " + io.message);
    static obs::Counter reads("store.reader.blocks_read_total");
    reads.add();
    return decodeBlockBytes(b, raw.data(), ints, dbls, detail);
}

bool
FeatureStoreReader::decodeBlockBytes(
    std::size_t b, const std::uint8_t *raw,
    std::vector<std::vector<std::int64_t>> &ints,
    std::vector<std::vector<double>> &dbls,
    std::string *detail) const
{
    const store::BlockInfo &info = index[b];
    const std::size_t size = static_cast<std::size_t>(info.size);
    const std::string where = "block " + std::to_string(b);

    store::ByteReader crc_r(raw + size - 4, 4);
    if (store::crc32(raw, size - 4) != crc_r.u32())
        return fail(detail, where + ": CRC mismatch");

    store::ByteReader r(raw, size - 4);
    const std::uint32_t n = r.u32();
    if (n != info.records)
        return fail(detail,
                    where + ": record count disagrees with index");

    ints.resize(schema_.intColumns());
    dbls.resize(schema_.doubleColumns());
    for (std::size_t c = 0; c < schema_.intColumns(); ++c) {
        const std::uint32_t len = r.u32();
        if (len > r.remaining())
            return fail(detail, where + ": column overruns block");
        ints[c].resize(n);
        const bool good =
            version_ >= 2
                ? store::decodeIntColumnTagged(r.cursor(), len, n,
                                               ints[c].data())
                : store::decodeIntColumn(r.cursor(), len, n,
                                         ints[c].data());
        if (!good)
            return fail(detail, where + ": bad integer column " +
                                    std::to_string(c));
        r.skip(len);
    }
    for (std::size_t c = 0; c < schema_.doubleColumns(); ++c) {
        const std::uint32_t len = r.u32();
        if (len > r.remaining())
            return fail(detail, where + ": column overruns block");
        dbls[c].resize(n);
        if (!store::decodeDoubleColumn(r.cursor(), len, n,
                                       dbls[c].data()))
            return fail(detail, where + ": bad double column " +
                                    std::to_string(c));
        r.skip(len);
    }
    if (!r.ok() || r.remaining() != 0)
        return fail(detail, where + ": trailing bytes after columns");
    blocksDecoded_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter decodes("store.reader.blocks_decoded_total");
    decodes.add();
    return true;
}

bool
FeatureStoreReader::blockIterBounds(std::size_t b, std::int64_t &lo,
                                    std::int64_t &hi) const
{
    if (const store::BlockZone *z = zone(b)) {
        lo = z->intMin[0];
        hi = z->intMax[0];
        return true;
    }
    if (sorted_) {
        lo = index[b].firstIter;
        hi = index[b].lastIter;
        return true;
    }
    return false;
}

bool
FeatureStoreReader::verify(std::string *detail) const
{
    std::vector<std::uint8_t> raw;
    std::vector<std::vector<std::int64_t>> ints;
    std::vector<std::vector<double>> dbls;
    for (std::size_t b = 0; b < index.size(); ++b) {
        if (!decodeBlock(b, raw, ints, dbls, detail))
            return false;
        if (ints[0].front() != index[b].firstIter ||
            ints[0].back() != index[b].lastIter)
            return fail(detail,
                        "block " + std::to_string(b) +
                            ": iteration bounds disagree with index");
        if (const store::BlockZone *z = zone(b)) {
            // The zone map is derived data; recompute and compare
            // so a corrupt or stale entry cannot silently drop
            // blocks from filtered queries. Plain == suffices for
            // the doubles: entries never hold NaN (the empty
            // interval is (+inf, -inf)), and the writer computes
            // them with the same helper from the same values.
            const store::BlockZone want =
                store::computeBlockZone(ints, dbls);
            bool same = true;
            for (std::size_t c = 0; c < store::zoneIntColumns; ++c)
                same = same && z->intMin[c] == want.intMin[c] &&
                       z->intMax[c] == want.intMax[c];
            for (std::size_t c = 0; c < store::zoneDoubleColumns;
                 ++c)
                same = same && z->dblMin[c] == want.dblMin[c] &&
                       z->dblMax[c] == want.dblMax[c];
            if (!same)
                return fail(detail,
                            "block " + std::to_string(b) +
                                ": zone map disagrees with data");
        }
    }
    return true;
}

void
FeatureStoreReader::Cursor::fill(std::size_t b)
{
    std::string detail;
    if (!reader->decodeBlock(b, raw, ints, dbls, &detail))
        TDFE_FATAL("corrupt feature store: ", detail);
    count = ints[0].size();
    pos = 0;
}

bool
FeatureStoreReader::Cursor::next(FeatureRecord &out)
{
    while (pos == count) {
        if (block >= reader->blockCount())
            return false;
        fill(block++);
    }
    materialize(reader->schema_, ints, dbls, pos, out);
    ++pos;
    return true;
}

FeatureStoreReader::Cursor
FeatureStoreReader::cursorAt(std::int64_t iter_begin) const
{
    Cursor c(*this);
    if (!sorted_)
        return c;
    // First block whose last iteration reaches the range start.
    const auto it = std::lower_bound(
        index.begin(), index.end(), iter_begin,
        [](const store::BlockInfo &b, std::int64_t v) {
            return b.lastIter < v;
        });
    c.block = static_cast<std::size_t>(it - index.begin());
    return c;
}

std::size_t
FeatureStoreReader::readRange(std::int64_t iter_begin,
                              std::int64_t iter_end,
                              std::vector<FeatureRecord> &out) const
{
    std::size_t appended = 0;
    std::size_t b = 0;
    if (sorted_) {
        const auto it = std::lower_bound(
            index.begin(), index.end(), iter_begin,
            [](const store::BlockInfo &blk, std::int64_t v) {
                return blk.lastIter < v;
            });
        b = static_cast<std::size_t>(it - index.begin());
    }
    std::vector<std::uint8_t> raw;
    std::vector<std::vector<std::int64_t>> ints;
    std::vector<std::vector<double>> dbls;
    FeatureRecord rec;
    for (; b < index.size(); ++b) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        if (blockIterBounds(b, lo, hi)) {
            if (sorted_ && lo >= iter_end)
                break; // every later block is even later
            if (hi < iter_begin || lo >= iter_end)
                continue; // pruned: never read, never decoded
        }
        std::string detail;
        if (!decodeBlock(b, raw, ints, dbls, &detail))
            TDFE_FATAL("corrupt feature store: ", detail);
        for (std::size_t i = 0; i < ints[0].size(); ++i) {
            const std::int64_t iter = ints[0][i];
            if (iter < iter_begin || iter >= iter_end)
                continue;
            materialize(schema_, ints, dbls, i, rec);
            out.push_back(rec);
            ++appended;
        }
    }
    return appended;
}

} // namespace tdfe
