#include "store/reader.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "base/logging.hh"
#include "base/portable.hh"
#include "store/codec.hh"

namespace tdfe
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
FeatureStoreReader::loadAndCheckHeader(const std::string &path,
                                       FeatureStoreReader &reader,
                                       std::uint32_t &n_int,
                                       std::uint32_t &n_dbl,
                                       std::string *error)
{
    auto reject = [&](const std::string &msg) {
        return fail(error, path + ": " + msg);
    };

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return reject("cannot open");
    const std::streamoff size = in.tellg();
    if (size < static_cast<std::streamoff>(store::headerBytes))
        return reject("truncated: shorter than the header");
    reader.file.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(reader.file.data()), size);
    if (!in.good())
        return reject("short read");
    const std::vector<std::uint8_t> &f = reader.file;

    if (std::memcmp(f.data(), store::headerMagic, 8) != 0)
        return reject("bad header magic (not a feature store)");
    store::ByteReader h(f.data() + 8, store::headerBytes - 8);
    const std::uint32_t version = h.u32();
    if (version != store::formatVersion)
        return reject("unsupported format version " +
                      std::to_string(version));
    reader.capacity_ = h.u32();
    n_int = h.u32();
    n_dbl = h.u32();
    // File-supplied counts bound every later loop and allocation,
    // so cap them here: a corrupt header must be rejected, not
    // obeyed.
    if (reader.capacity_ == 0 ||
        reader.capacity_ > store::maxBlockCapacity ||
        n_int != StoreSchema::numIntColumns ||
        n_dbl < StoreSchema::numFixedDoubleColumns ||
        n_dbl > store::maxDoubleColumns)
        return reject("implausible header column/capacity counts");
    return true;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::open(const std::string &path, std::string *error)
{
    auto reject = [&](const std::string &msg)
        -> std::unique_ptr<FeatureStoreReader> {
        fail(error, path + ": " + msg);
        return nullptr;
    };

    auto reader =
        std::unique_ptr<FeatureStoreReader>(new FeatureStoreReader());
    std::uint32_t n_int = 0;
    std::uint32_t n_dbl = 0;
    if (!loadAndCheckHeader(path, *reader, n_int, n_dbl, error))
        return nullptr;
    const std::vector<std::uint8_t> &f = reader->file;
    if (f.size() < store::headerBytes + store::trailerBytes)
        return reject("truncated: shorter than header + trailer");

    // Trailer -> footer window.
    const std::size_t tr = f.size() - store::trailerBytes;
    if (std::memcmp(f.data() + tr + 8, store::trailerMagic, 8) != 0)
        return reject("bad trailer magic (truncated store?)");
    store::ByteReader t(f.data() + tr, 8);
    const std::uint64_t footer_off = t.u64();
    if (footer_off < store::headerBytes || footer_off > tr)
        return reject("footer offset out of range");
    const std::size_t footer_len =
        tr - static_cast<std::size_t>(footer_off);
    if (footer_len < 4)
        return reject("footer too small");

    // Footer CRC, then parse.
    const std::uint8_t *fp = f.data() + footer_off;
    store::ByteReader crc_r(fp + footer_len - 4, 4);
    if (store::crc32(fp, footer_len - 4) != crc_r.u32())
        return reject("footer CRC mismatch");
    store::ByteReader r(fp, footer_len - 4);
    const std::uint64_t n_blocks = r.u64();
    // Divide instead of multiplying: n_blocks is file-supplied and
    // a product could wrap past the check.
    if (n_blocks > footer_len / store::indexEntryBytes)
        return reject("footer block count implausible");
    reader->index.resize(static_cast<std::size_t>(n_blocks));
    std::uint64_t record_sum = 0;
    std::uint64_t prev_end = store::headerBytes;
    for (store::BlockInfo &b : reader->index) {
        b.offset = r.u64();
        b.size = r.u64();
        b.records = r.u64();
        b.firstIter = r.i64();
        b.lastIter = r.i64();
        // b.records also bounds decodeBlock's scratch resize, so
        // tie it to the block's actual byte size: the iteration
        // column alone costs >= 1 varint byte per record.
        if (b.offset != prev_end || b.size < 8 ||
            b.offset + b.size > footer_off || b.records == 0 ||
            b.records > reader->capacity_ || b.records > b.size)
            return reject("block index entry out of range");
        prev_end = b.offset + b.size;
        record_sum += b.records;
    }
    if (prev_end != footer_off)
        return reject("blocks do not tile the data section");
    reader->records_ = static_cast<std::size_t>(r.u64());
    if (reader->records_ != record_sum)
        return reject("footer record count disagrees with index");
    reader->sorted_ = r.u32() != 0;
    if (r.u32() != n_int || r.u32() != n_dbl)
        return reject("footer schema disagrees with header");
    reader->schema_.coeffCount =
        static_cast<std::size_t>(r.u64());
    if (reader->schema_.doubleColumns() != n_dbl)
        return reject("coefficient count disagrees with columns");
    for (std::uint32_t i = 0; i < n_int + n_dbl; ++i) {
        const std::uint32_t len = r.u32();
        if (!r.ok() || len > r.remaining())
            return reject("column name overruns footer");
        std::string name(len, '\0');
        r.bytes(name.data(), len);
        reader->names_.push_back(std::move(name));
    }
    if (!r.ok())
        return reject("footer truncated");

    // Belt and braces: the footer flag must agree with the block
    // boundaries it implies.
    for (std::size_t b = 1; b < reader->index.size(); ++b)
        if (reader->index[b].firstIter <
            reader->index[b - 1].lastIter)
            reader->sorted_ = false;

    return reader;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::salvage(const std::string &path,
                            std::string *error)
{
    auto reader =
        std::unique_ptr<FeatureStoreReader>(new FeatureStoreReader());
    std::uint32_t n_int = 0;
    std::uint32_t n_dbl = 0;
    if (!loadAndCheckHeader(path, *reader, n_int, n_dbl, error))
        return nullptr;
    reader->salvaged_ = true;
    reader->schema_.coeffCount =
        n_dbl - StoreSchema::numFixedDoubleColumns;
    // Column names never make it into a footerless file, but they
    // are deterministic functions of the schema — rebuild them.
    for (std::uint32_t i = 0; i < n_int; ++i)
        reader->names_.push_back(StoreSchema::intColumnName(i));
    for (std::uint32_t i = 0; i < n_dbl; ++i)
        reader->names_.push_back(
            reader->schema_.doubleColumnName(i));

    // Forward scan: keep accepting blocks while the bytes at the
    // cursor parse, CRC-check, AND fully decode as one. The first
    // offset that fails any of those is where the damage starts —
    // a torn block, the beginning of a (possibly corrupt) footer,
    // or plain garbage; everything before it is trusted exactly as
    // much as a footer-backed block (same CRC, same decoders).
    const std::vector<std::uint8_t> &f = reader->file;
    const std::uint32_t n_cols = n_int + n_dbl;
    std::vector<std::vector<std::int64_t>> ints;
    std::vector<std::vector<double>> dbls;
    std::int64_t last_iter = 0;
    std::size_t off = store::headerBytes;
    for (;;) {
        store::ByteReader r(f.data() + off, f.size() - off);
        const std::uint32_t count = r.u32();
        if (!r.ok() || count == 0 || count > reader->capacity_)
            break;
        bool shaped = true;
        for (std::uint32_t c = 0; c < n_cols && shaped; ++c) {
            const std::uint32_t len = r.u32();
            if (!r.ok() || len > r.remaining())
                shaped = false;
            else
                r.skip(len);
        }
        if (!shaped || r.remaining() < 4)
            break;
        const std::size_t size = (r.cursor() - (f.data() + off)) + 4;

        store::BlockInfo info;
        info.offset = off;
        info.size = size;
        info.records = count;
        reader->index.push_back(info);
        if (!reader->decodeBlock(reader->index.size() - 1, ints,
                                 dbls, nullptr)) {
            reader->index.pop_back();
            break;
        }
        store::BlockInfo &accepted = reader->index.back();
        accepted.firstIter = ints[0].front();
        accepted.lastIter = ints[0].back();
        for (std::size_t i = 0; i < ints[0].size(); ++i) {
            if (reader->records_ + i > 0 && ints[0][i] < last_iter)
                reader->sorted_ = false;
            last_iter = ints[0][i];
        }
        reader->records_ += count;
        off += size;
    }
    reader->droppedTail_ = f.size() - off;
    return reader;
}

std::unique_ptr<FeatureStoreReader>
FeatureStoreReader::openOrSalvage(const std::string &path,
                                  std::string *error,
                                  bool *was_salvaged)
{
    std::string open_error;
    auto reader = open(path, &open_error);
    if (reader && reader->verify(&open_error)) {
        if (was_salvaged)
            *was_salvaged = false;
        return reader;
    }
    // Footer missing/corrupt, or a footer-indexed block does not
    // decode: fall back to the prefix scan so whatever does decode
    // is still usable (and a cursor cannot hit the fatal path).
    auto recovered = salvage(path, error);
    if (!recovered && error && !open_error.empty())
        *error = open_error + "; " + *error;
    if (recovered && was_salvaged)
        *was_salvaged = true;
    return recovered;
}

bool
FeatureStoreReader::decodeBlock(
    std::size_t b, std::vector<std::vector<std::int64_t>> &ints,
    std::vector<std::vector<double>> &dbls,
    std::string *detail) const
{
    const store::BlockInfo &info = index[b];
    const std::uint8_t *base =
        file.data() + static_cast<std::size_t>(info.offset);
    const std::size_t size = static_cast<std::size_t>(info.size);
    const std::string where = "block " + std::to_string(b);

    store::ByteReader crc_r(base + size - 4, 4);
    if (store::crc32(base, size - 4) != crc_r.u32())
        return fail(detail, where + ": CRC mismatch");

    store::ByteReader r(base, size - 4);
    const std::uint32_t n = r.u32();
    if (n != info.records)
        return fail(detail,
                    where + ": record count disagrees with index");

    ints.resize(schema_.intColumns());
    dbls.resize(schema_.doubleColumns());
    for (std::size_t c = 0; c < schema_.intColumns(); ++c) {
        const std::uint32_t len = r.u32();
        if (len > r.remaining())
            return fail(detail, where + ": column overruns block");
        ints[c].resize(n);
        if (!store::decodeIntColumn(r.cursor(), len, n,
                                    ints[c].data()))
            return fail(detail, where + ": bad integer column " +
                                    std::to_string(c));
        r.skip(len);
    }
    for (std::size_t c = 0; c < schema_.doubleColumns(); ++c) {
        const std::uint32_t len = r.u32();
        if (len > r.remaining())
            return fail(detail, where + ": column overruns block");
        dbls[c].resize(n);
        if (!store::decodeDoubleColumn(r.cursor(), len, n,
                                       dbls[c].data()))
            return fail(detail, where + ": bad double column " +
                                    std::to_string(c));
        r.skip(len);
    }
    if (!r.ok() || r.remaining() != 0)
        return fail(detail, where + ": trailing bytes after columns");
    return true;
}

bool
FeatureStoreReader::verify(std::string *detail) const
{
    std::vector<std::vector<std::int64_t>> ints;
    std::vector<std::vector<double>> dbls;
    for (std::size_t b = 0; b < index.size(); ++b) {
        if (!decodeBlock(b, ints, dbls, detail))
            return false;
        if (ints[0].front() != index[b].firstIter ||
            ints[0].back() != index[b].lastIter)
            return fail(detail,
                        "block " + std::to_string(b) +
                            ": iteration bounds disagree with index");
    }
    return true;
}

void
FeatureStoreReader::Cursor::fill(std::size_t b)
{
    std::string detail;
    if (!reader->decodeBlock(b, ints, dbls, &detail))
        TDFE_FATAL("corrupt feature store: ", detail);
    count = ints[0].size();
    pos = 0;
}

bool
FeatureStoreReader::Cursor::next(FeatureRecord &out)
{
    while (pos == count) {
        if (block >= reader->blockCount())
            return false;
        fill(block++);
    }
    out.iteration = static_cast<long>(ints[0][pos]);
    out.analysis = static_cast<long>(ints[1][pos]);
    out.stop = ints[2][pos] != 0;
    out.wallTime = dbls[0][pos];
    out.wavefront = dbls[1][pos];
    out.predicted = dbls[2][pos];
    out.mse = dbls[3][pos];
    out.coeffs.resize(reader->schema_.coeffCount);
    for (std::size_t k = 0; k < reader->schema_.coeffCount; ++k)
        out.coeffs[k] =
            dbls[StoreSchema::numFixedDoubleColumns + k][pos];
    ++pos;
    return true;
}

FeatureStoreReader::Cursor
FeatureStoreReader::cursorAt(std::int64_t iter_begin) const
{
    Cursor c(*this);
    if (!sorted_)
        return c;
    // First block whose last iteration reaches the range start.
    const auto it = std::lower_bound(
        index.begin(), index.end(), iter_begin,
        [](const store::BlockInfo &b, std::int64_t v) {
            return b.lastIter < v;
        });
    c.block = static_cast<std::size_t>(it - index.begin());
    return c;
}

std::size_t
FeatureStoreReader::readRange(std::int64_t iter_begin,
                              std::int64_t iter_end,
                              std::vector<FeatureRecord> &out) const
{
    std::size_t appended = 0;
    Cursor c = cursorAt(iter_begin);
    FeatureRecord rec;
    while (c.next(rec)) {
        if (rec.iteration >= iter_end) {
            if (sorted_)
                break; // everything after is even later
            continue;
        }
        if (rec.iteration < iter_begin)
            continue;
        out.push_back(rec);
        ++appended;
    }
    return appended;
}

} // namespace tdfe
