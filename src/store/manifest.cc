#include "store/manifest.hh"

#include <cstring>

#include "store/codec.hh"

namespace tdfe
{

namespace store
{

std::string
manifestPathFor(const std::string &store_path)
{
    return store_path + ".live";
}

void
encodeManifest(const LiveManifest &m, std::vector<std::uint8_t> &out)
{
    out.clear();
    out.insert(out.end(), manifestMagic, manifestMagic + 8);
    putU32(out, manifestVersion);
    putU32(out, m.storeVersion);
    putU64(out, m.generation);
    putU32(out, m.flags);
    putU32(out, static_cast<std::uint32_t>(m.blockCapacity));
    putU32(out, m.intColumns);
    putU32(out, m.doubleColumns);
    putU64(out, m.coeffCount);
    putU64(out, m.index.size());
    putU64(out, m.recordCount);
    putU64(out, m.dataBytes);
    putU32(out, m.sorted ? 1 : 0);
    for (std::size_t b = 0; b < m.index.size(); ++b) {
        const BlockInfo &info = m.index[b];
        putU64(out, info.offset);
        putU64(out, info.size);
        putU64(out, info.records);
        putI64(out, info.firstIter);
        putI64(out, info.lastIter);
        const BlockZone &z = m.zones[b];
        for (std::size_t c = 0; c < zoneIntColumns; ++c) {
            putI64(out, z.intMin[c]);
            putI64(out, z.intMax[c]);
        }
        for (std::size_t c = 0; c < zoneDoubleColumns; ++c) {
            std::uint64_t bits;
            std::memcpy(&bits, &z.dblMin[c], sizeof(bits));
            putU64(out, bits);
            std::memcpy(&bits, &z.dblMax[c], sizeof(bits));
            putU64(out, bits);
        }
    }
    putU32(out, crc32(out.data(), out.size()));
}

namespace
{

bool
reject(std::string *error, const std::string &msg)
{
    if (error)
        *error = "live manifest: " + msg;
    return false;
}

double
bitsToDouble(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

} // namespace

bool
decodeManifest(const std::uint8_t *data, std::size_t n,
               LiveManifest &out, std::string *error)
{
    if (n < 8 + 4 || std::memcmp(data, manifestMagic, 8) != 0)
        return reject(error, "bad magic");
    ByteReader crc_r(data + n - 4, 4);
    if (crc32(data, n - 4) != crc_r.u32())
        return reject(error, "CRC mismatch (torn publication?)");
    ByteReader r(data + 8, n - 8 - 4);
    const std::uint32_t framing = r.u32();
    if (framing != manifestVersion)
        return reject(error, "unsupported manifest version " +
                                 std::to_string(framing));
    out.storeVersion = r.u32();
    out.generation = r.u64();
    out.flags = r.u32();
    out.blockCapacity = r.u32();
    out.intColumns = r.u32();
    out.doubleColumns = r.u32();
    out.coeffCount = r.u64();
    const std::uint64_t n_blocks = r.u64();
    out.recordCount = r.u64();
    out.dataBytes = r.u64();
    out.sorted = r.u32() != 0;
    if (!r.ok())
        return reject(error, "truncated frame");
    if (out.storeVersion < minSupportedFormatVersion ||
        out.storeVersion > formatVersion)
        return reject(error, "unsupported store version " +
                                 std::to_string(out.storeVersion));
    // The same header-plausibility bounds open() enforces: every
    // later loop and allocation is bounded by these counts.
    if (out.blockCapacity == 0 ||
        out.blockCapacity > maxBlockCapacity ||
        out.intColumns != zoneIntColumns ||
        out.doubleColumns < zoneDoubleColumns ||
        out.doubleColumns > maxDoubleColumns ||
        out.coeffCount != out.doubleColumns - zoneDoubleColumns)
        return reject(error, "implausible schema fields");
    if (n_blocks > r.remaining() / (indexEntryBytes + zoneEntryBytes))
        return reject(error, "block count implausible");

    out.index.resize(static_cast<std::size_t>(n_blocks));
    out.zones.resize(static_cast<std::size_t>(n_blocks));
    std::uint64_t record_sum = 0;
    std::uint64_t prev_end = headerBytes;
    for (std::size_t b = 0; b < out.index.size(); ++b) {
        BlockInfo &info = out.index[b];
        info.offset = r.u64();
        info.size = r.u64();
        info.records = r.u64();
        info.firstIter = r.i64();
        info.lastIter = r.i64();
        if (info.offset != prev_end || info.size < 8 ||
            info.offset + info.size > out.dataBytes ||
            info.records == 0 || info.records > out.blockCapacity ||
            info.records > info.size)
            return reject(error, "block index entry out of range");
        prev_end = info.offset + info.size;
        record_sum += info.records;
        BlockZone &z = out.zones[b];
        for (std::size_t c = 0; c < zoneIntColumns; ++c) {
            z.intMin[c] = r.i64();
            z.intMax[c] = r.i64();
        }
        for (std::size_t c = 0; c < zoneDoubleColumns; ++c) {
            z.dblMin[c] = bitsToDouble(r.u64());
            z.dblMax[c] = bitsToDouble(r.u64());
        }
    }
    if (!r.ok() || r.remaining() != 0)
        return reject(error, "trailing bytes after index");
    if (prev_end != out.dataBytes)
        return reject(error, "blocks do not tile the data extent");
    if (record_sum != out.recordCount)
        return reject(error, "record count disagrees with index");
    return true;
}

} // namespace store

} // namespace tdfe
