#include "store/writer.hh"

#include "base/logging.hh"
#include "base/portable.hh"
#include "base/timer.hh"
#include "store/codec.hh"

namespace tdfe
{

FeatureStoreWriter::FeatureStoreWriter(const std::string &path,
                                       StoreSchema schema,
                                       StoreOptions options)
    : path_(path), schema_(schema), opts_(options),
      out(path, std::ios::binary | std::ios::trunc)
{
    if (!out)
        TDFE_FATAL("cannot open feature store for writing: ", path);
    // Enforce the same bounds the reader enforces at open, so every
    // file this writer produces is one its own reader accepts.
    if (opts_.blockCapacity == 0 ||
        opts_.blockCapacity > store::maxBlockCapacity)
        TDFE_FATAL("feature store block capacity ",
                   opts_.blockCapacity, " outside [1, ",
                   store::maxBlockCapacity, "]");
    if (schema_.doubleColumns() > store::maxDoubleColumns)
        TDFE_FATAL("feature store schema has ",
                   schema_.doubleColumns(),
                   " double columns, format maximum is ",
                   store::maxDoubleColumns);

    stInt.resize(schema_.intColumns());
    stDbl.resize(schema_.doubleColumns());
    pdInt.resize(schema_.intColumns());
    pdDbl.resize(schema_.doubleColumns());
    for (auto &c : stInt)
        c.reserve(opts_.blockCapacity);
    for (auto &c : stDbl)
        c.reserve(opts_.blockCapacity);
    for (auto &c : pdInt)
        c.reserve(opts_.blockCapacity);
    for (auto &c : pdDbl)
        c.reserve(opts_.blockCapacity);

    std::vector<std::uint8_t> h;
    h.reserve(store::headerBytes);
    h.insert(h.end(), store::headerMagic, store::headerMagic + 8);
    store::putU32(h, store::formatVersion);
    store::putU32(h, static_cast<std::uint32_t>(opts_.blockCapacity));
    store::putU32(h, static_cast<std::uint32_t>(schema_.intColumns()));
    store::putU32(h,
                  static_cast<std::uint32_t>(schema_.doubleColumns()));
    out.write(reinterpret_cast<const char *>(h.data()),
              static_cast<std::streamsize>(h.size()));
    bytesWritten_ = h.size();
}

FeatureStoreWriter::~FeatureStoreWriter()
{
    if (!finished_)
        finish();
}

void
FeatureStoreWriter::append(const FeatureRecord &record)
{
    if (finished_)
        TDFE_FATAL("append to a finished feature store: ", path_);
    if (record.coeffs.size() != schema_.coeffCount) {
        TDFE_FATAL("feature record has ", record.coeffs.size(),
                   " coefficients, store schema has ",
                   schema_.coeffCount);
    }

    if (records_ > 0 && record.iteration < lastIter_)
        sortedAppends_ = false;
    lastIter_ = record.iteration;

    stInt[0].push_back(record.iteration);
    stInt[1].push_back(record.analysis);
    stInt[2].push_back(record.stop ? 1 : 0);
    stDbl[0].push_back(record.wallTime);
    stDbl[1].push_back(record.wavefront);
    stDbl[2].push_back(record.predicted);
    stDbl[3].push_back(record.mse);
    for (std::size_t k = 0; k < schema_.coeffCount; ++k)
        stDbl[StoreSchema::numFixedDoubleColumns + k].push_back(
            record.coeffs[k]);

    ++records_;
    if (++staged == opts_.blockCapacity)
        seal();
}

void
FeatureStoreWriter::seal()
{
    Timer t;
    // Strict flush order: the previous block must be on disk (or at
    // least encoded and written by its job) before its buffers are
    // recycled and the next flush is queued. With one job in flight
    // at a time, sync and async mode write the same bytes in the
    // same order — only *when* the encode runs differs.
    drainFlush();
    rotateStaging();

    if (opts_.async && ThreadPool::global().threadCount() > 1) {
        flushJob = ThreadPool::global().submit(
            1, [this](std::size_t) { flushPending(); });
    } else {
        flushPending();
    }
    exposed_ += t.elapsed();
}

void
FeatureStoreWriter::flushPending()
{
    const std::size_t n = pdInt[0].size();
    encodeBuf.clear();
    store::putU32(encodeBuf, static_cast<std::uint32_t>(n));
    // Encode straight into encodeBuf and backpatch the 4-byte
    // length prefix — no per-column scratch, no second copy.
    auto backpatch = [this](std::size_t at) {
        const std::size_t len = encodeBuf.size() - (at + 4);
        for (int i = 0; i < 4; ++i)
            encodeBuf[at + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    };
    for (const auto &c : pdInt) {
        const std::size_t at = encodeBuf.size();
        store::putU32(encodeBuf, 0);
        store::encodeIntColumn(c.data(), n, encodeBuf);
        backpatch(at);
    }
    for (const auto &c : pdDbl) {
        const std::size_t at = encodeBuf.size();
        store::putU32(encodeBuf, 0);
        store::encodeDoubleColumn(c.data(), n, encodeBuf);
        backpatch(at);
    }
    store::putU32(encodeBuf,
                  store::crc32(encodeBuf.data(), encodeBuf.size()));

    store::BlockInfo info;
    info.offset = bytesWritten_;
    info.size = encodeBuf.size();
    info.records = n;
    info.firstIter = pdInt[0].front();
    info.lastIter = pdInt[0].back();

    out.write(reinterpret_cast<const char *>(encodeBuf.data()),
              static_cast<std::streamsize>(encodeBuf.size()));
    bytesWritten_ += encodeBuf.size();
    index.push_back(info);
}

void
FeatureStoreWriter::drainFlush()
{
    if (flushJob) {
        ThreadPool::global().wait(flushJob);
        flushJob.reset();
    }
}

void
FeatureStoreWriter::rotateStaging()
{
    stInt.swap(pdInt);
    stDbl.swap(pdDbl);
    for (auto &c : stInt)
        c.clear();
    for (auto &c : stDbl)
        c.clear();
    staged = 0;
    ++sealed_;
}

std::size_t
FeatureStoreWriter::finish()
{
    if (finished_)
        return static_cast<std::size_t>(bytesWritten_);
    Timer t;
    drainFlush();
    if (staged > 0) {
        // Seal inline: there is nothing left to overlap with.
        rotateStaging();
        flushPending();
    }
    writeFooter();
    out.flush();
    if (!out.good())
        TDFE_FATAL("feature store write failed: ", path_);
    out.close();
    finished_ = true;
    exposed_ += t.elapsed();
    return static_cast<std::size_t>(bytesWritten_);
}

void
FeatureStoreWriter::writeFooter()
{
    const std::uint64_t footer_offset = bytesWritten_;
    std::vector<std::uint8_t> f;
    store::putU64(f, index.size());
    for (const store::BlockInfo &b : index) {
        store::putU64(f, b.offset);
        store::putU64(f, b.size);
        store::putU64(f, b.records);
        store::putI64(f, b.firstIter);
        store::putI64(f, b.lastIter);
    }
    store::putU64(f, records_);
    store::putU32(f, sortedAppends_ ? 1 : 0);
    store::putU32(f, static_cast<std::uint32_t>(schema_.intColumns()));
    store::putU32(f,
                  static_cast<std::uint32_t>(schema_.doubleColumns()));
    store::putU64(f, schema_.coeffCount);
    auto put_name = [&f](const std::string &name) {
        store::putU32(f, static_cast<std::uint32_t>(name.size()));
        f.insert(f.end(), name.begin(), name.end());
    };
    for (std::size_t i = 0; i < schema_.intColumns(); ++i)
        put_name(StoreSchema::intColumnName(i));
    for (std::size_t i = 0; i < schema_.doubleColumns(); ++i)
        put_name(schema_.doubleColumnName(i));
    store::putU32(f, store::crc32(f.data(), f.size()));

    store::putU64(f, footer_offset);
    f.insert(f.end(), store::trailerMagic, store::trailerMagic + 8);
    out.write(reinterpret_cast<const char *>(f.data()),
              static_cast<std::streamsize>(f.size()));
    bytesWritten_ += f.size();
}

} // namespace tdfe
