#include "store/writer.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "base/logging.hh"
#include "base/portable.hh"
#include "base/timer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/codec.hh"
#include "store/manifest.hh"

namespace tdfe
{

FeatureStoreWriter::FeatureStoreWriter(const std::string &path,
                                       StoreSchema schema,
                                       StoreOptions options)
    : path_(path), schema_(schema), opts_(options)
{
    store::IoError open_error;
    file_ = store::openOsFile(path, &open_error);
    init(open_error);
}

FeatureStoreWriter::FeatureStoreWriter(
    std::unique_ptr<store::StoreFile> file, StoreSchema schema,
    StoreOptions options)
    : path_(file ? file->path() : "<null>"), schema_(schema),
      opts_(options), file_(std::move(file))
{
    init(store::IoError());
}

void
FeatureStoreWriter::init(store::IoError open_error)
{
    // Enforce the same bounds the reader enforces at open, so every
    // file this writer produces is one its own reader accepts.
    // These are caller bugs, not I/O weather — still fatal.
    if (opts_.blockCapacity == 0 ||
        opts_.blockCapacity > store::maxBlockCapacity)
        TDFE_FATAL("feature store block capacity ",
                   opts_.blockCapacity, " outside [1, ",
                   store::maxBlockCapacity, "]");
    if (schema_.doubleColumns() > store::maxDoubleColumns)
        TDFE_FATAL("feature store schema has ",
                   schema_.doubleColumns(),
                   " double columns, format maximum is ",
                   store::maxDoubleColumns);
    if (opts_.maxRetries < 0)
        opts_.maxRetries = 0;

    stInt.resize(schema_.intColumns());
    stDbl.resize(schema_.doubleColumns());
    pdInt.resize(schema_.intColumns());
    pdDbl.resize(schema_.doubleColumns());
    for (auto &c : stInt)
        c.reserve(opts_.blockCapacity);
    for (auto &c : stDbl)
        c.reserve(opts_.blockCapacity);
    for (auto &c : pdInt)
        c.reserve(opts_.blockCapacity);
    for (auto &c : pdDbl)
        c.reserve(opts_.blockCapacity);

    if (!file_) {
        // Cannot even open the file (full scratch, bad directory):
        // degrade instead of killing the producing simulation.
        if (open_error.ok()) {
            open_error.code = EIO;
            open_error.message = "no file supplied";
        }
        fail(open_error, 0);
        return;
    }

    std::vector<std::uint8_t> h;
    h.reserve(store::headerBytes);
    h.insert(h.end(), store::headerMagic, store::headerMagic + 8);
    store::putU32(h, store::formatVersion);
    store::putU32(h, static_cast<std::uint32_t>(opts_.blockCapacity));
    store::putU32(h, static_cast<std::uint32_t>(schema_.intColumns()));
    store::putU32(h,
                  static_cast<std::uint32_t>(schema_.doubleColumns()));
    writeChecked(h.data(), h.size(), 0);
    // Generation 1 is the empty prefix: publishing it right after
    // the header lets a live view attach before the first block is
    // sealed (it pins a valid zero-block snapshot).
    if (ok())
        publishManifest(false, true);
}

FeatureStoreWriter::~FeatureStoreWriter()
{
    if (!finished_)
        finish();
}

bool
FeatureStoreWriter::append(const FeatureRecord &record)
{
    if (finished_)
        TDFE_FATAL("append to a finished feature store: ", path_);
    if (record.coeffs.size() != schema_.coeffCount) {
        TDFE_FATAL("feature record has ", record.coeffs.size(),
                   " coefficients, store schema has ",
                   schema_.coeffCount);
    }
    if (!ok()) {
        // Sticky degraded state: the record is dropped and the
        // producer keeps running. One load + one add — this is the
        // whole per-record cost of a dead store.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter drops(
            "store.writer.records_dropped_total");
        drops.add();
        return false;
    }

    if (records_ > 0 && record.iteration < lastIter_)
        sortedAppends_ = false;
    lastIter_ = record.iteration;

    stInt[0].push_back(record.iteration);
    stInt[1].push_back(record.analysis);
    stInt[2].push_back(record.stop ? 1 : 0);
    stDbl[0].push_back(record.wallTime);
    stDbl[1].push_back(record.wavefront);
    stDbl[2].push_back(record.predicted);
    stDbl[3].push_back(record.mse);
    for (std::size_t k = 0; k < schema_.coeffCount; ++k)
        stDbl[StoreSchema::numFixedDoubleColumns + k].push_back(
            record.coeffs[k]);

    ++records_;
    static obs::Counter records("store.writer.records_total");
    records.add();
    if (++staged == opts_.blockCapacity)
        seal();
    return ok();
}

void
FeatureStoreWriter::seal()
{
    // Span + exposed accumulator share one clock read, the same
    // derivation contract as Region's "region.exposed.*" spans.
    obs::SpanTimer t("store.exposed.seal", "store");
    // Strict flush order: the previous block must be on disk (or at
    // least encoded and written by its job) before its buffers are
    // recycled and the next flush is queued. With one job in flight
    // at a time, sync and async mode write the same bytes in the
    // same order — only *when* the encode runs differs.
    drainFlush();
    if (!ok()) {
        // The in-flight flush died: its records are already counted
        // as lost; the staged ones will never be written either.
        discardStaging();
        exposed_ += t.stop();
        return;
    }
    rotateStaging();

    if (opts_.async && ThreadPool::global().threadCount() > 1) {
        flushJob = ThreadPool::global().submit(
            1, [this](std::size_t) { flushPending(); });
    } else {
        flushPending();
    }
    const double secs = t.stop();
    exposed_ += secs;
    static obs::Histogram sealLatency("store.writer.seal_seconds");
    sealLatency.observe(secs);
}

void
FeatureStoreWriter::flushPending()
{
    // On an async store this runs on a pool worker: in a trace the
    // span sits on the worker tid, under the next solver step.
    obs::SpanTimer span("store.flush", "store");
    const std::size_t n = pdInt[0].size();
    encodeBuf.clear();
    store::putU32(encodeBuf, static_cast<std::uint32_t>(n));
    // Encode straight into encodeBuf and backpatch the 4-byte
    // length prefix — no per-column scratch, no second copy.
    auto backpatch = [this](std::size_t at) {
        const std::size_t len = encodeBuf.size() - (at + 4);
        for (int i = 0; i < 4; ++i)
            encodeBuf[at + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    };
    for (const auto &c : pdInt) {
        const std::size_t at = encodeBuf.size();
        store::putU32(encodeBuf, 0);
        store::encodeIntColumnTagged(c.data(), n, encodeBuf);
        backpatch(at);
    }
    for (const auto &c : pdDbl) {
        const std::size_t at = encodeBuf.size();
        store::putU32(encodeBuf, 0);
        store::encodeDoubleColumn(c.data(), n, encodeBuf);
        backpatch(at);
    }
    store::putU32(encodeBuf,
                  store::crc32(encodeBuf.data(), encodeBuf.size()));

    store::BlockInfo info;
    info.offset = bytesWritten_;
    info.size = encodeBuf.size();
    info.records = n;
    info.firstIter = pdInt[0].front();
    info.lastIter = pdInt[0].back();

    if (!writeChecked(encodeBuf.data(), encodeBuf.size(), n))
        return;
    index.push_back(info);
    zones.push_back(store::computeBlockZone(pdInt, pdDbl));
    publishManifest(false, false);
}

bool
FeatureStoreWriter::writeChecked(const std::uint8_t *data,
                                 std::size_t n,
                                 std::size_t lost_records)
{
    const std::uint64_t start = bytesWritten_;
    store::IoError err;
    for (int attempt = 0;; ++attempt) {
        err = file_->write(data, n);
        if (err.ok()) {
            static obs::Counter syncs("store.writer.syncs_total");
            switch (opts_.durability) {
              case store::DurabilityPolicy::None:
                break;
              case store::DurabilityPolicy::FlushPerSeal:
                err = file_->flush();
                syncs.add();
                break;
              case store::DurabilityPolicy::SyncPerSeal:
                err = file_->sync();
                syncs.add();
                break;
            }
        }
        if (err.ok()) {
            bytesWritten_ += n;
            static obs::Counter bytes(
                "store.writer.bytes_written_total");
            bytes.add(n);
            return true;
        }
        if (!err.transientHint() || attempt >= opts_.maxRetries)
            break;
        static obs::Counter retries("store.writer.retries_total");
        retries.add();
        // Roll the file back to the start of this write so the
        // rewrite never leaves a torn prefix in the middle; if even
        // that fails, the file state is unknowable — give up.
        const store::IoError cut = file_->truncateTo(start);
        if (!cut.ok()) {
            err = cut;
            break;
        }
        if (opts_.retryBackoffUs > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(opts_.retryBackoffUs) << attempt));
    }
    // Unrecoverable: best-effort cut back to the sealed prefix so a
    // salvage scan finds clean blocks right up to the failure.
    file_->truncateTo(start);
    fail(err, lost_records);
    return false;
}

void
FeatureStoreWriter::fail(const store::IoError &error,
                         std::size_t lost_records)
{
    dropped_.fetch_add(lost_records, std::memory_order_relaxed);
    if (lost_records) {
        static obs::Counter drops(
            "store.writer.records_dropped_total");
        drops.add(lost_records);
    }
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!failed_.load(std::memory_order_relaxed))
            error_ = error;
    }
    failed_.store(true, std::memory_order_release);
    warnOnce(warned_, "store",
             detail::concatMessage(
                 "feature store '", path_,
                 "' degraded, further records will be dropped: ",
                 error.message));
}

store::IoError
FeatureStoreWriter::status() const
{
    std::lock_guard<std::mutex> lock(errorMutex_);
    return error_;
}

void
FeatureStoreWriter::drainFlush()
{
    if (flushJob) {
        ThreadPool::global().wait(flushJob);
        flushJob.reset();
    }
}

void
FeatureStoreWriter::rotateStaging()
{
    stInt.swap(pdInt);
    stDbl.swap(pdDbl);
    for (auto &c : stInt)
        c.clear();
    for (auto &c : stDbl)
        c.clear();
    staged = 0;
    ++sealed_;
    static obs::Counter seals("store.writer.blocks_sealed_total");
    seals.add();
    pendingSorted_ = sortedAppends_;
}

void
FeatureStoreWriter::discardStaging()
{
    dropped_.fetch_add(staged, std::memory_order_relaxed);
    if (staged) {
        static obs::Counter drops(
            "store.writer.records_dropped_total");
        drops.add(staged);
    }
    for (auto &c : stInt)
        c.clear();
    for (auto &c : stDbl)
        c.clear();
    staged = 0;
}

std::size_t
FeatureStoreWriter::finish()
{
    if (finished_)
        return ok() ? static_cast<std::size_t>(bytesWritten_) : 0;
    obs::SpanTimer t("store.exposed.finish", "store");
    drainFlush();
    if (ok() && staged > 0) {
        // Seal inline: there is nothing left to overlap with.
        rotateStaging();
        flushPending();
    }
    if (ok()) {
        writeFooter();
    } else {
        discardStaging();
    }
    if (ok()) {
        // The footer is what makes the file complete; make it at
        // least kernel-visible regardless of policy, durable under
        // fsync-per-seal.
        const store::IoError err =
            opts_.durability == store::DurabilityPolicy::SyncPerSeal
                ? file_->sync()
                : file_->flush();
        if (!err.ok())
            fail(err, 0);
    }
    if (file_) {
        const store::IoError err = file_->close();
        if (err.ok() == false && ok())
            fail(err, 0);
    }
    // Final generation: tells attached views the store has settled
    // (cleanly, or degraded to its sealed prefix) and no further
    // generations will come. Published after the data file is closed
    // so everything the manifest describes is kernel-visible.
    publishManifest(true, true);
    finished_ = true;
    exposed_ += t.stop();
    return ok() ? static_cast<std::size_t>(bytesWritten_) : 0;
}

void
FeatureStoreWriter::writeFooter()
{
    const std::uint64_t footer_offset = bytesWritten_;
    std::vector<std::uint8_t> f;
    store::putU64(f, index.size());
    for (const store::BlockInfo &b : index) {
        store::putU64(f, b.offset);
        store::putU64(f, b.size);
        store::putU64(f, b.records);
        store::putI64(f, b.firstIter);
        store::putI64(f, b.lastIter);
    }
    store::putU64(f, records_);
    store::putU32(f, sortedAppends_ ? 1 : 0);
    store::putU32(f, static_cast<std::uint32_t>(schema_.intColumns()));
    store::putU32(f,
                  static_cast<std::uint32_t>(schema_.doubleColumns()));
    store::putU64(f, schema_.coeffCount);
    auto put_name = [&f](const std::string &name) {
        store::putU32(f, static_cast<std::uint32_t>(name.size()));
        f.insert(f.end(), name.begin(), name.end());
    };
    for (std::size_t i = 0; i < schema_.intColumns(); ++i)
        put_name(StoreSchema::intColumnName(i));
    for (std::size_t i = 0; i < schema_.doubleColumns(); ++i)
        put_name(schema_.doubleColumnName(i));
    auto put_dbl_bits = [&f](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        store::putU64(f, bits);
    };
    for (const store::BlockZone &z : zones) {
        for (std::size_t c = 0; c < store::zoneIntColumns; ++c) {
            store::putI64(f, z.intMin[c]);
            store::putI64(f, z.intMax[c]);
        }
        for (std::size_t c = 0; c < store::zoneDoubleColumns; ++c) {
            put_dbl_bits(z.dblMin[c]);
            put_dbl_bits(z.dblMax[c]);
        }
    }
    store::putU32(f, store::crc32(f.data(), f.size()));

    store::putU64(f, footer_offset);
    f.insert(f.end(), store::trailerMagic, store::trailerMagic + 8);
    writeChecked(f.data(), f.size(), 0);
}

void
FeatureStoreWriter::publishManifest(bool final_manifest, bool force)
{
    if (!opts_.live || !liveOk())
        return;
    if (!force && opts_.livePublishEvery > 1 &&
        index.size() % opts_.livePublishEvery != 0)
        return;

    // A manifest must never run ahead of what another process can
    // read: under the buffered policy the sealed block may still sit
    // in stdio buffers, so push it to the kernel first. (finish()
    // flushes/closes the data file before its final publication.)
    if (!final_manifest && file_ &&
        opts_.durability == store::DurabilityPolicy::None) {
        const store::IoError err = file_->flush();
        if (!err.ok()) {
            liveFail(err);
            return;
        }
    }

    store::LiveManifest m;
    m.storeVersion = store::formatVersion;
    m.generation = ++liveGeneration_;
    if (final_manifest)
        m.flags |= store::manifestFlagFinal;
    if (!ok())
        m.flags |= store::manifestFlagDegraded;
    m.blockCapacity = opts_.blockCapacity;
    m.intColumns = static_cast<std::uint32_t>(schema_.intColumns());
    m.doubleColumns =
        static_cast<std::uint32_t>(schema_.doubleColumns());
    m.coeffCount = schema_.coeffCount;
    std::uint64_t sealed_records = 0;
    for (const store::BlockInfo &b : index)
        sealed_records += b.records;
    m.recordCount = sealed_records;
    m.dataBytes = index.empty()
                      ? store::headerBytes
                      : index.back().offset + index.back().size;
    m.sorted = pendingSorted_;
    m.index = index;
    m.zones = zones;
    store::encodeManifest(m, manifestBuf_);

    // Whole-frame rewrite into a tmp sibling, then rename over the
    // previous generation: readers observe either manifest, never a
    // blend, without any reader/writer locking.
    const std::string live_path = store::manifestPathFor(path_);
    const std::string tmp_path = live_path + ".tmp";
    store::IoError err;
    std::unique_ptr<store::StoreFile> out =
        opts_.liveFileFactory ? opts_.liveFileFactory(tmp_path, &err)
                              : store::openOsFile(tmp_path, &err);
    if (!out) {
        if (err.ok()) {
            err.code = EIO;
            err.message = "cannot open " + tmp_path;
        }
        liveFail(err);
        return;
    }
    err = out->write(manifestBuf_.data(), manifestBuf_.size());
    if (err.ok())
        err = opts_.durability ==
                      store::DurabilityPolicy::SyncPerSeal
                  ? out->sync()
                  : out->flush();
    const store::IoError close_err = out->close();
    if (err.ok())
        err = close_err;
    if (err.ok() && std::rename(tmp_path.c_str(),
                                live_path.c_str()) != 0) {
        err.code = errno ? errno : EIO;
        err.message = "rename " + tmp_path + ": " +
                      std::strerror(err.code);
    }
    if (!err.ok()) {
        std::remove(tmp_path.c_str());
        liveFail(err);
        return;
    }
    livePublished_.fetch_add(1, std::memory_order_release);
    static obs::Counter publishes(
        "store.writer.live_publishes_total");
    publishes.add();
}

void
FeatureStoreWriter::liveFail(const store::IoError &error)
{
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!liveFailed_.load(std::memory_order_relaxed))
            liveError_ = error;
    }
    liveFailed_.store(true, std::memory_order_release);
    warnOnce(liveWarned_, "live",
             detail::concatMessage(
                 "feature store '", path_,
                 "' live manifest publication failed; live views "
                 "will no longer advance (the trace itself is "
                 "unaffected): ",
                 error.message));
}

store::IoError
FeatureStoreWriter::liveStatus() const
{
    std::lock_guard<std::mutex> lock(errorMutex_);
    return liveError_;
}

} // namespace tdfe
