/**
 * @file
 * The unit of the feature trace store: one extracted-feature sample
 * per (iteration, analysis). The paper's pitch is that in-situ AR
 * extraction replaces dumping the full-fidelity trace; the store
 * makes the extracted side of that comparison a durable, queryable
 * artifact instead of values that die with the process.
 */

#ifndef TDFE_STORE_FEATURE_RECORD_HH
#define TDFE_STORE_FEATURE_RECORD_HH

#include <cstddef>
#include <string>
#include <vector>

namespace tdfe
{

/**
 * One row of the feature store. Integer fields and double fields
 * are stored in separate column families on disk (delta+zigzag
 * varints vs Gorilla XOR packing); `coeffs` holds the intercept-first
 * raw-space AR coefficients and must match the store schema's
 * coefficient column count exactly.
 */
struct FeatureRecord
{
    /** Simulation iteration the sample belongs to. */
    long iteration = 0;
    /** Analysis id within the region (0 for single-analysis apps). */
    long analysis = 0;
    /** Stop flag published by the region's protocol at this point. */
    bool stop = false;
    /** Wall-clock seconds since the producing region was created. */
    double wallTime = 0.0;
    /** Wave-front position (sampled location with the peak value). */
    double wavefront = 0.0;
    /** One-step predicted value at the feature location. */
    double predicted = 0.0;
    /** Rolling validation MSE of the fit (normalized space). */
    double mse = 0.0;
    /** Intercept-first raw-space fit coefficients (zeros until the
     *  model trains). Size = StoreSchema::coeffCount. */
    std::vector<double> coeffs;
};

/**
 * Column layout of one store file. The integer and the non-coeff
 * double columns are fixed; only the coefficient column count varies
 * (model order + 1 of the producing analyses). Column names are
 * recorded in the file footer so tools stay self-describing.
 */
struct StoreSchema
{
    /** Coefficient columns (AR order + 1, intercept first). */
    std::size_t coeffCount = 0;

    /** Fixed integer columns: iteration, analysis, stop. */
    static constexpr std::size_t numIntColumns = 3;
    /** Fixed double columns before the coefficients. */
    static constexpr std::size_t numFixedDoubleColumns = 4;

    std::size_t intColumns() const { return numIntColumns; }
    std::size_t doubleColumns() const
    {
        return numFixedDoubleColumns + coeffCount;
    }
    /** Columns of one record, both families. */
    std::size_t totalColumns() const
    {
        return intColumns() + doubleColumns();
    }

    /** Name of integer column @p i (tools / CSV export). */
    static std::string
    intColumnName(std::size_t i)
    {
        static const char *names[numIntColumns] = {"iteration",
                                                   "analysis", "stop"};
        return i < numIntColumns ? names[i] : "int?";
    }

    /** Name of double column @p i (tools / CSV export). */
    std::string
    doubleColumnName(std::size_t i) const
    {
        static const char *fixed[numFixedDoubleColumns] = {
            "wall_time", "wavefront", "predicted", "mse"};
        if (i < numFixedDoubleColumns)
            return fixed[i];
        return "coef" +
               std::to_string(i - numFixedDoubleColumns);
    }

    bool
    operator==(const StoreSchema &o) const
    {
        return coeffCount == o.coeffCount;
    }
    bool operator!=(const StoreSchema &o) const { return !(*this == o); }
};

} // namespace tdfe

#endif // TDFE_STORE_FEATURE_RECORD_HH
