#include "store/live.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "store/manifest.hh"

namespace tdfe
{

const char *
liveStateName(LiveState s)
{
    switch (s) {
      case LiveState::Waiting:
        return "waiting";
      case LiveState::Live:
        return "live";
      case LiveState::Final:
        return "final";
      case LiveState::WriterLost:
        return "writer-lost";
    }
    return "?";
}

/**
 * One adopted manifest generation: an immutable reader over exactly
 * that sealed prefix. Owned via shared_ptr — the newest one by the
 * LiveStoreReader, plus one reference per outstanding StoreView, so
 * a snapshot (and the data-file handle inside its reader) lives for
 * as long as anyone still reads through it.
 */
struct LiveSnapshot
{
    std::unique_ptr<FeatureStoreReader> reader;
    std::uint64_t generation = 0;
    bool final = false;
    bool degraded = false;
};

const FeatureStoreReader &
StoreView::reader() const
{
    if (!snap_)
        TDFE_FATAL("reader() on an unpinned StoreView");
    return *snap_->reader;
}

std::uint64_t
StoreView::generation() const
{
    return snap_ ? snap_->generation : 0;
}

bool
StoreView::final() const
{
    return snap_ && snap_->final;
}

bool
StoreView::degraded() const
{
    return snap_ && snap_->degraded;
}

std::size_t
StoreView::recordCount() const
{
    return snap_ ? snap_->reader->recordCount() : 0;
}

std::size_t
StoreView::blockCount() const
{
    return snap_ ? snap_->reader->blockCount() : 0;
}

LiveStoreReader::LiveStoreReader(std::string store_path,
                                 LiveViewOptions options)
    : path_(std::move(store_path)), opts_(options),
      lastAdvance_(std::chrono::steady_clock::now())
{
    if (opts_.pollMinUs < 1)
        opts_.pollMinUs = 1;
    if (opts_.pollMaxUs < opts_.pollMinUs)
        opts_.pollMaxUs = opts_.pollMinUs;
}

StoreView
LiveStoreReader::view() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return StoreView(snap_);
}

std::string
LiveStoreReader::lastError() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lastError_;
}

void
LiveStoreReader::rejectRefresh(const std::string &why)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lastError_ = why;
    }
    rejects_.fetch_add(1, std::memory_order_release);
}

void
LiveStoreReader::publish(std::shared_ptr<const LiveSnapshot> snap,
                         LiveState state)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snap_ = snap;
    }
    generation_.store(snap->generation, std::memory_order_release);
    state_.store(state, std::memory_order_release);
    lastAdvance_ = std::chrono::steady_clock::now();
}

bool
LiveStoreReader::refresh()
{
    const LiveState s = state();
    if (s == LiveState::Final || s == LiveState::WriterLost)
        return false;

    store::IoError io;
    std::unique_ptr<store::ReadFile> mf = store::openReadFileVia(
        opts_.fileFactory, store::manifestPathFor(path_), &io);
    if (!mf) {
        // No manifest (yet). The one legitimate reason while
        // unattached is a store that was finished without live mode
        // (or whose sidecar was cleaned up) — a footer-backed open
        // serves it as a Final view. Anything else is "nothing
        // published yet": not an error, just no advance.
        if (!attached()) {
            std::string open_err;
            std::unique_ptr<FeatureStoreReader> r =
                FeatureStoreReader::open(path_, &open_err,
                                         opts_.fileFactory);
            if (r) {
                auto snap = std::make_shared<LiveSnapshot>();
                snap->reader = std::move(r);
                snap->generation =
                    generation_.load(std::memory_order_relaxed) + 1;
                snap->final = true;
                publish(std::move(snap), LiveState::Final);
                return true;
            }
        }
        return false;
    }

    const std::uint64_t size = mf->size();
    // Largest frame we ever accept: bounded by the index caps the
    // decoder enforces anyway; this just keeps a garbage sidecar
    // from provoking a huge allocation before the CRC can reject it.
    constexpr std::uint64_t maxFrame =
        std::uint64_t(128) * 1024 * 1024;
    if (size < 12 || size > maxFrame) {
        rejectRefresh("live manifest: implausible size " +
                      std::to_string(size));
        return false;
    }
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
    io = mf->readAt(0, buf.data(), buf.size());
    mf.reset();
    if (!io.ok()) {
        rejectRefresh("live manifest: " + io.message);
        return false;
    }

    store::LiveManifest m;
    std::string why;
    if (!store::decodeManifest(buf.data(), buf.size(), m, &why)) {
        rejectRefresh(why);
        return false;
    }
    if (m.generation <= generation())
        return false; // already serving this prefix (or newer)

    if (!adopt(m, &why)) {
        rejectRefresh(why);
        return false;
    }
    return true;
}

bool
LiveStoreReader::adopt(const store::LiveManifest &m, std::string *why)
{
    std::shared_ptr<const LiveSnapshot> prev;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        prev = snap_;
    }

    // Generations come from one writer over one store: the shape
    // must not change, and the previous snapshot's blocks must
    // reappear verbatim as a prefix (sealed blocks are immutable).
    // A manifest violating either is not a newer view of our store.
    const FeatureStoreReader *pr =
        prev ? prev->reader.get() : nullptr;
    if (pr && (m.blockCapacity != pr->blockCapacity() ||
               m.coeffCount != pr->schema().coeffCount)) {
        *why = "live manifest: schema/capacity changed mid-stream";
        return false;
    }
    const std::size_t prev_blocks = pr ? pr->blockCount() : 0;
    if (m.index.size() < prev_blocks) {
        *why = "live manifest: fewer blocks than the adopted view";
        return false;
    }
    for (std::size_t b = 0; b < prev_blocks; ++b) {
        const store::BlockInfo &a = m.index[b];
        const store::BlockInfo &o = pr->blockInfo(b);
        if (a.offset != o.offset || a.size != o.size ||
            a.records != o.records) {
            *why = "live manifest: adopted block prefix rewritten";
            return false;
        }
    }

    std::unique_ptr<FeatureStoreReader> r(new FeatureStoreReader());
    r->schema_.coeffCount =
        static_cast<std::size_t>(m.coeffCount);
    r->version_ = m.storeVersion;
    r->capacity_ = static_cast<std::size_t>(m.blockCapacity);
    r->records_ = static_cast<std::size_t>(m.recordCount);
    r->sorted_ = m.sorted;
    r->index = m.index;
    r->zones_ = m.zones;
    for (std::size_t i = 0; i < r->schema_.intColumns(); ++i)
        r->names_.push_back(StoreSchema::intColumnName(i));
    for (std::size_t i = 0; i < r->schema_.doubleColumns(); ++i)
        r->names_.push_back(r->schema_.doubleColumnName(i));

    if (!m.index.empty()) {
        store::IoError io;
        std::unique_ptr<store::ReadFile> file =
            store::openReadFileVia(opts_.fileFactory, path_, &io);
        if (!file) {
            *why = "live manifest: data file unreadable: " +
                   io.message;
            return false;
        }
        if (file->size() < m.dataBytes) {
            // The classic lying-kernel tear: the manifest made it
            // to disk, the data it indexes did not.
            *why = "live manifest: runs ahead of the data file (" +
                   std::to_string(file->size()) + " < " +
                   std::to_string(m.dataBytes) + " bytes)";
            return false;
        }
        r->file_ = std::move(file);

        if (opts_.validateBlocks) {
            // Only blocks this view adds: earlier ones were
            // validated when first adopted and are immutable, so
            // refresh stays O(new blocks) — amortized one decode
            // per block over the store's lifetime.
            std::vector<std::uint8_t> raw;
            std::vector<std::vector<std::int64_t>> ints;
            std::vector<std::vector<double>> dbls;
            std::string detail;
            for (std::size_t b = prev_blocks; b < r->index.size();
                 ++b) {
                if (!r->decodeBlock(b, raw, ints, dbls, &detail)) {
                    *why = "live manifest: new block " +
                           std::to_string(b) +
                           " rejected: " + detail;
                    return false;
                }
            }
            r->resetIoStats(); // validation is not query I/O
        }
    }

    auto snap = std::make_shared<LiveSnapshot>();
    snap->reader = std::move(r);
    snap->generation = m.generation;
    snap->final = m.final();
    snap->degraded = m.degraded();
    const LiveState next =
        m.final() ? LiveState::Final : LiveState::Live;
    publish(std::move(snap), next);
    return true;
}

void
LiveStoreReader::degradeToStatic()
{
    std::shared_ptr<const LiveSnapshot> prev;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        prev = snap_;
    }
    const std::size_t prev_records =
        prev ? prev->reader->recordCount() : 0;

    // The writer may have finished (intact footer, manifest lost)
    // or crashed after sealing more than the last manifest shows —
    // openOrSalvage captures the longest fully-decodable prefix
    // either way. Adopt it only when it is at least as long as what
    // we already serve; a terminal degrade never loses records.
    std::string err;
    bool was_salvaged = false;
    std::unique_ptr<FeatureStoreReader> r =
        FeatureStoreReader::openOrSalvage(path_, &err, &was_salvaged,
                                          opts_.fileFactory);
    if (r && r->recordCount() >= prev_records) {
        const std::size_t now_records = r->recordCount();
        auto snap = std::make_shared<LiveSnapshot>();
        snap->generation =
            generation_.load(std::memory_order_relaxed) + 1;
        snap->final = !was_salvaged;
        snap->degraded = was_salvaged;
        snap->reader = std::move(r);
        publish(std::move(snap), was_salvaged
                                     ? LiveState::WriterLost
                                     : LiveState::Final);
        warnDegraded(
            "live_view",
            detail::concatMessage(
                "live view of '", path_, "' stalled; serving a ",
                was_salvaged ? "salvaged" : "footer-backed",
                " static prefix (", prev_records, " -> ",
                now_records, " records)"));
        return;
    }
    // Nothing better recoverable: freeze what we have.
    state_.store(LiveState::WriterLost, std::memory_order_release);
    warnDegraded(
        "live_view",
        detail::concatMessage(
            "live view of '", path_,
            "' stalled with no recoverable store; frozen at ",
            prev_records, " records"));
}

bool
LiveStoreReader::waitForAdvance(double timeout_seconds)
{
    using clock = std::chrono::steady_clock;
    const clock::time_point start = clock::now();
    long sleep_us = opts_.pollMinUs;
    for (;;) {
        if (refresh())
            return true;
        const LiveState s = state();
        if (s == LiveState::Final || s == LiveState::WriterLost)
            return false;
        const clock::time_point now = clock::now();
        const auto since = [](clock::time_point a,
                              clock::time_point b) {
            return std::chrono::duration<double>(b - a).count();
        };
        if (timeout_seconds >= 0.0 &&
            since(start, now) >= timeout_seconds)
            return false;
        if (opts_.stallDeadlineSeconds > 0.0 &&
            since(lastAdvance_, now) >= opts_.stallDeadlineSeconds) {
            degradeToStatic();
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(sleep_us));
        sleep_us = std::min<long>(sleep_us * 2, opts_.pollMaxUs);
    }
}

TailCursor::TailCursor(LiveStoreReader &live, EventFilter filter)
    : live_(&live), filter_(std::move(filter))
{
}

bool
TailCursor::next(FeatureRecord &out)
{
    for (;;) {
        if (!cursor_) {
            StoreView nv = live_->view();
            if (!nv.valid()) {
                drained_ = true;
                return false;
            }
            view_ = std::move(nv);
            cursor_.reset(new FeatureStoreReader::Cursor(
                view_.reader().cursorAtBlock(blocksConsumed_)));
        }
        while (cursor_->next(out)) {
            if (filter_.matches(out)) {
                ++delivered_;
                drained_ = false;
                return true;
            }
        }
        // Current snapshot drained; resume a newer one (if any) at
        // the first block we have not consumed.
        blocksConsumed_ = view_.reader().blockCount();
        if (live_->generation() == view_.generation()) {
            drained_ = true;
            return false;
        }
        StoreView nv = live_->view();
        view_ = std::move(nv);
        cursor_.reset(new FeatureStoreReader::Cursor(
            view_.reader().cursorAtBlock(blocksConsumed_)));
    }
}

bool
TailCursor::done() const
{
    const LiveState s = live_->state();
    if (s != LiveState::Final && s != LiveState::WriterLost)
        return false;
    const std::uint64_t pinned =
        view_.valid() ? view_.generation() : 0;
    return drained_ && live_->generation() == pinned;
}

} // namespace tdfe
