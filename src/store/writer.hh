/**
 * @file
 * Append-only writer of the feature trace store (see format.hh for
 * the byte layout). Records are staged into columnar builders; every
 * `blockCapacity` records the block is sealed — encoded per column
 * and written with a CRC. In async mode the seal hands the staged
 * columns to the process-wide ThreadPool so the encode and the
 * file write overlap the solver, mirroring the snapshot-and-defer
 * discipline of Region::setAsyncAnalyses: the caller only ever pays
 * a cheap buffer swap (plus a stall if the previous block is still
 * in flight, charged to exposedSeconds()). Blocks are flushed
 * strictly in seal order, so sync and async mode produce
 * byte-identical files.
 */

#ifndef TDFE_STORE_WRITER_HH
#define TDFE_STORE_WRITER_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "base/thread_pool.hh"
#include "store/feature_record.hh"
#include "store/format.hh"

namespace tdfe
{

/** Writer behaviour knobs. */
struct StoreOptions
{
    /** Records per block (encode/flush granularity). */
    std::size_t blockCapacity = 256;
    /** Defer block encode + write to the process-wide ThreadPool so
     *  the producing thread never blocks on I/O. Degenerates to the
     *  synchronous path on a single-thread pool; files are
     *  byte-identical either way. */
    bool async = false;
};

/**
 * Append-only block writer. Single-producer: append() and finish()
 * must come from one thread (the async flush runs on the pool, but
 * its hand-off is internal). Records should be appended in
 * nondecreasing iteration order for the reader's block-index range
 * queries to use random access; out-of-order appends are legal
 * (e.g. rank-merged files) and simply downgrade range queries to a
 * sequential scan.
 */
class FeatureStoreWriter
{
  public:
    /**
     * Create/truncate the store at @p path and write the header.
     * Fatal when the file cannot be opened or the options are
     * degenerate.
     */
    FeatureStoreWriter(const std::string &path, StoreSchema schema,
                       StoreOptions options = StoreOptions());

    /** Finishes the store if finish() was not called explicitly. */
    ~FeatureStoreWriter();

    FeatureStoreWriter(const FeatureStoreWriter &) = delete;
    FeatureStoreWriter &operator=(const FeatureStoreWriter &) = delete;

    /**
     * Stage one record (coeffs size must match the schema). Cheap:
     * columnar pushes into reserved buffers; every blockCapacity-th
     * append seals a block (encode + write, deferred in async mode).
     * Fatal after finish().
     */
    void append(const FeatureRecord &record);

    /**
     * Drain any in-flight flush, seal the partial block, write the
     * footer + trailer, and close the file. Idempotent.
     * @return total file bytes.
     */
    std::size_t finish();

    /** @return records appended so far. */
    std::size_t recordCount() const { return records_; }

    /** @return column layout the store was opened with. */
    const StoreSchema &schema() const { return schema_; }

    /** @return blocks sealed so far (in-flight ones included). */
    std::size_t blocksSealed() const { return sealed_; }

    /**
     * Cumulative seconds of store work *exposed* to the producer:
     * seal-path time (buffer swap + any stall on the previous
     * in-flight flush + the inline encode/write in sync mode) plus
     * finish(). Per-record staging pushes are not timed — they are
     * a few nanoseconds and timing them would cost more than they
     * do. This is the store's contribution to the per-step overhead
     * the paper's tables report.
     */
    double exposedSeconds() const { return exposed_; }

    /** @return path the store is being written to. */
    const std::string &path() const { return path_; }

  private:
    /** Seal the staged block: swap into the pending buffers and
     *  flush (inline, or as a pool job in async mode). */
    void seal();

    /** Encode + write the pending block (caller or pool worker;
     *  strictly serialized by the one-job-in-flight discipline). */
    void flushPending();

    /** Wait for the in-flight flush job, if any. */
    void drainFlush();

    /** Swap the staged columns into the (drained) pending buffers
     *  and reset the staging side for the next block. */
    void rotateStaging();

    void writeFooter();

    std::string path_;
    StoreSchema schema_;
    StoreOptions opts_;
    std::ofstream out;

    /** Active staging columns (ints, then doubles). @{ */
    std::vector<std::vector<std::int64_t>> stInt;
    std::vector<std::vector<double>> stDbl;
    std::size_t staged = 0;
    /** @} */

    /** Sealed-but-flushing columns (recycled by swap). @{ */
    std::vector<std::vector<std::int64_t>> pdInt;
    std::vector<std::vector<double>> pdDbl;
    std::vector<std::uint8_t> encodeBuf;
    ThreadPool::JobHandle flushJob;
    /** @} */

    std::vector<store::BlockInfo> index;
    /** Iteration monotonicity across appends (footer sorted flag —
     *  rank merges break it and downgrade range queries). @{ */
    std::int64_t lastIter_ = 0;
    bool sortedAppends_ = true;
    /** @} */
    std::size_t records_ = 0;
    std::size_t sealed_ = 0;
    std::uint64_t bytesWritten_ = 0;
    double exposed_ = 0.0;
    bool finished_ = false;
};

} // namespace tdfe

#endif // TDFE_STORE_WRITER_HH
