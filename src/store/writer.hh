/**
 * @file
 * Append-only writer of the feature trace store (see format.hh for
 * the byte layout). Records are staged into columnar builders; every
 * `blockCapacity` records the block is sealed — encoded per column
 * and written with a CRC. In async mode the seal hands the staged
 * columns to the process-wide ThreadPool so the encode and the
 * file write overlap the solver, mirroring the snapshot-and-defer
 * discipline of Region::setAsyncAnalyses: the caller only ever pays
 * a cheap buffer swap (plus a stall if the previous block is still
 * in flight, charged to exposedSeconds()). Blocks are flushed
 * strictly in seal order, so sync and async mode produce
 * byte-identical files.
 *
 * Failure semantics (the store must never take the simulation
 * down): every sealed block's write is checked immediately, not at
 * close. Transient failures (EIO/EINTR/EAGAIN) are retried with
 * bounded backoff — the file is truncated back to the block start
 * and the block rewritten, so a short write never leaves garbage in
 * the middle. Unrecoverable failures (ENOSPC, retry budget spent)
 * latch a sticky error: the writer logs once, truncates the file
 * back to its last sealed block (best effort, so the sealed prefix
 * stays salvage-clean), and every later append() returns false and
 * drops the record. Nothing in this class calls TDFE_FATAL for I/O
 * — fatals are reserved for caller bugs (schema mismatch, append
 * after finish).
 */

#ifndef TDFE_STORE_WRITER_HH
#define TDFE_STORE_WRITER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/thread_pool.hh"
#include "store/feature_record.hh"
#include "store/file.hh"
#include "store/format.hh"

namespace tdfe
{

/** Writer behaviour knobs. */
struct StoreOptions
{
    /** Records per block (encode/flush granularity). */
    std::size_t blockCapacity = 256;
    /** Defer block encode + write to the process-wide ThreadPool so
     *  the producing thread never blocks on I/O. Degenerates to the
     *  synchronous path on a single-thread pool; files are
     *  byte-identical either way. */
    bool async = false;
    /** When sealed blocks become durable (see DurabilityPolicy). */
    store::DurabilityPolicy durability =
        store::DurabilityPolicy::None;
    /** Retries per block for transient I/O failures before the
     *  writer degrades. */
    int maxRetries = 3;
    /** Base backoff before retry @c k sleeps `backoff << k`
     *  microseconds (0 disables sleeping — tests). */
    int retryBackoffUs = 500;
    /**
     * Publish a live manifest ("<path>.live", see manifest.hh)
     * after sealed blocks so concurrent LiveStoreReader views can
     * follow the store while it is being written. Publication rides
     * the flush path (the pool worker in async mode), never the
     * append hot path, and a publication failure degrades only the
     * live side (liveOk()) — the store itself keeps writing.
     */
    bool live = false;
    /** Seals between manifest publications (live mode). 1 publishes
     *  every sealed block; larger values amortize the O(blocks)
     *  manifest rewrite on very long runs. finish() always
     *  publishes a final manifest regardless. */
    std::size_t livePublishEvery = 1;
    /** Test seam: how the manifest tmp file is opened (empty: OS
     *  file). Fault plans injected here exercise the sticky live
     *  degrade without touching the data file. */
    std::function<std::unique_ptr<store::StoreFile>(
        const std::string &, store::IoError *)>
        liveFileFactory;
};

/**
 * Append-only block writer. Single-producer: append() and finish()
 * must come from one thread (the async flush runs on the pool, but
 * its hand-off is internal). Records should be appended in
 * nondecreasing iteration order for the reader's block-index range
 * queries to use random access; out-of-order appends are legal
 * (e.g. rank-merged files) and simply downgrade range queries to a
 * sequential scan.
 */
class FeatureStoreWriter
{
  public:
    /**
     * Create/truncate the store at @p path and write the header.
     * A path that cannot be opened does NOT terminate: the writer
     * starts in the degraded state (ok() false, appends dropped)
     * and the producing simulation continues. Fatal only when the
     * options are degenerate (caller bug).
     */
    FeatureStoreWriter(const std::string &path, StoreSchema schema,
                       StoreOptions options = StoreOptions());

    /**
     * As above over a caller-supplied file — the fault-injection
     * entry point (tests and bench wrap an OsFile in a FaultyFile).
     */
    FeatureStoreWriter(std::unique_ptr<store::StoreFile> file,
                       StoreSchema schema,
                       StoreOptions options = StoreOptions());

    /** Finishes the store if finish() was not called explicitly. */
    ~FeatureStoreWriter();

    FeatureStoreWriter(const FeatureStoreWriter &) = delete;
    FeatureStoreWriter &operator=(const FeatureStoreWriter &) = delete;

    /**
     * Stage one record (coeffs size must match the schema — fatal
     * otherwise, as is appending after finish(); both are caller
     * bugs). Cheap: columnar pushes into reserved buffers; every
     * blockCapacity-th append seals a block (encode + write,
     * deferred in async mode).
     *
     * @return true when the record was accepted; false when the
     * writer is degraded by an earlier unrecoverable I/O error —
     * the record is dropped and counted in droppedRecords(), and
     * the caller should stop appending (Region detaches its sink).
     */
    bool append(const FeatureRecord &record);

    /**
     * Drain any in-flight flush, seal the partial block, write the
     * footer + trailer, and close the file. Idempotent.
     * @return total file bytes, or 0 when the writer is (or
     *         becomes) degraded — the file then holds only its
     *         salvageable sealed prefix, no footer.
     */
    std::size_t finish();

    /** @return true while no unrecoverable I/O error is latched. */
    bool
    ok() const
    {
        return !failed_.load(std::memory_order_acquire);
    }

    /**
     * @return the first unrecoverable I/O error (sticky; a
     * default-constructed IoError while ok()). The offset names
     * where in the file the failure hit.
     */
    store::IoError status() const;

    /** @return records appended (accepted for staging) so far. */
    std::size_t recordCount() const { return records_; }

    /** @return records that will never be readable from the file:
     *  appends rejected after the writer degraded plus staged
     *  records lost with a failed block. */
    std::size_t
    droppedRecords() const
    {
        return dropped_.load(std::memory_order_acquire);
    }

    /** @return column layout the store was opened with. */
    const StoreSchema &schema() const { return schema_; }

    /** @return blocks sealed so far (in-flight ones included). */
    std::size_t blocksSealed() const { return sealed_; }

    /**
     * Cumulative seconds of store work *exposed* to the producer:
     * seal-path time (buffer swap + any stall on the previous
     * in-flight flush + the inline encode/write in sync mode) plus
     * finish(). Per-record staging pushes are not timed — they are
     * a few nanoseconds and timing them would cost more than they
     * do. This is the store's contribution to the per-step overhead
     * the paper's tables report. A degraded writer's seal path
     * collapses to a latch check, so the exposed cost of a dead
     * store is ~0.
     */
    double exposedSeconds() const { return exposed_; }

    /** @return path the store is being written to. */
    const std::string &path() const { return path_; }

    /**
     * @return true while live-manifest publication (when requested
     * via StoreOptions::live) has not failed. Sticky like the store
     * degrade, but independent of it: a dead manifest path stops
     * live serving, not the trace — append() and finish() proceed
     * untouched. Always true when live mode is off.
     */
    bool
    liveOk() const
    {
        return !liveFailed_.load(std::memory_order_acquire);
    }

    /** @return the first manifest-publication error (sticky; a
     *  default-constructed IoError while liveOk()). */
    store::IoError liveStatus() const;

    /** @return manifest generations successfully published. */
    std::uint64_t
    livePublished() const
    {
        return livePublished_.load(std::memory_order_acquire);
    }

  private:
    /** Shared constructor body (file may be null: degraded open). */
    void init(store::IoError open_error);

    /** Seal the staged block: swap into the pending buffers and
     *  flush (inline, or as a pool job in async mode). */
    void seal();

    /** Encode + write the pending block (caller or pool worker;
     *  strictly serialized by the one-job-in-flight discipline). */
    void flushPending();

    /**
     * Checked write of @p n bytes with the per-seal durability step
     * and bounded transient-error retry (truncate back to the start
     * offset, rewrite, back off). On unrecoverable failure latches
     * the sticky error, charges @p lost_records to the drop count,
     * and best-effort truncates the file back to the start offset
     * so the sealed prefix stays clean. Advances bytesWritten_ on
     * success. @return success.
     */
    bool writeChecked(const std::uint8_t *data, std::size_t n,
                      std::size_t lost_records);

    /** Latch the sticky error (first one wins) and log once. */
    void fail(const store::IoError &error,
              std::size_t lost_records);

    /** Wait for the in-flight flush job, if any. */
    void drainFlush();

    /** Swap the staged columns into the (drained) pending buffers
     *  and reset the staging side for the next block. */
    void rotateStaging();

    /** Drop the staged records (degraded path). */
    void discardStaging();

    void writeFooter();

    /**
     * Atomically publish the live manifest describing the current
     * sealed prefix (tmp + rename; see manifest.hh). Runs on the
     * flush path — the pool worker in async mode — and inside
     * finish() for the final generation, so index/zones access is
     * serialized by the one-job-in-flight discipline. Respects
     * livePublishEvery unless @p force. On failure latches the
     * sticky live degrade (warn once) and never touches the data
     * file or the append path.
     */
    void publishManifest(bool final_manifest, bool force);

    /** Latch the sticky live-publication error (first one wins) and
     *  log once. The store itself keeps writing. */
    void liveFail(const store::IoError &error);

    std::string path_;
    StoreSchema schema_;
    StoreOptions opts_;
    std::unique_ptr<store::StoreFile> file_;

    /** Active staging columns (ints, then doubles). @{ */
    std::vector<std::vector<std::int64_t>> stInt;
    std::vector<std::vector<double>> stDbl;
    std::size_t staged = 0;
    /** @} */

    /** Sealed-but-flushing columns (recycled by swap). @{ */
    std::vector<std::vector<std::int64_t>> pdInt;
    std::vector<std::vector<double>> pdDbl;
    std::vector<std::uint8_t> encodeBuf;
    ThreadPool::JobHandle flushJob;
    /** @} */

    /** Sticky failure latch. The flag is written by whichever
     *  thread runs the failing flush (pool worker in async mode)
     *  and read lock-free on the append fast path; the error detail
     *  is guarded by errorMutex_. @{ */
    std::atomic<bool> failed_{false};
    mutable std::mutex errorMutex_;
    store::IoError error_;
    std::atomic<std::size_t> dropped_{0};
    /** warnOnce latch for the degrade warning (base/logging). */
    std::atomic<bool> warned_{false};
    /** @} */

    std::vector<store::BlockInfo> index;
    /** Per-sealed-block column min/max, written to the v2 footer as
     *  the zone map (grows in lockstep with index). */
    std::vector<store::BlockZone> zones;
    /** Iteration monotonicity across appends (footer sorted flag —
     *  rank merges break it and downgrade range queries). @{ */
    std::int64_t lastIter_ = 0;
    bool sortedAppends_ = true;
    /** Snapshot of sortedAppends_ taken at rotateStaging so the
     *  async flush worker never races the producer's appends. */
    bool pendingSorted_ = true;
    /** @} */
    std::size_t records_ = 0;
    std::size_t sealed_ = 0;
    std::uint64_t bytesWritten_ = 0;
    double exposed_ = 0.0;
    bool finished_ = false;

    /** Live-manifest publication state. The flag is sticky and read
     *  lock-free; the error detail shares errorMutex_. Generation
     *  and scratch are touched only on the (serialized) flush path.
     *  @{ */
    std::atomic<bool> liveFailed_{false};
    /** warnOnce latch for the live-degrade warning. */
    std::atomic<bool> liveWarned_{false};
    store::IoError liveError_;
    std::atomic<std::uint64_t> livePublished_{0};
    std::uint64_t liveGeneration_ = 0;
    std::vector<std::uint8_t> manifestBuf_;
    /** @} */
};

} // namespace tdfe

#endif // TDFE_STORE_WRITER_HH
