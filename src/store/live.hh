/**
 * @file
 * Crash-consistent live reads: snapshot-isolated views over a store
 * that is still being written. The writer republishes a CRC-framed
 * manifest sidecar after sealed blocks (see manifest.hh); a
 * LiveStoreReader follows those publications and turns each one it
 * accepts into an immutable snapshot — a footerless
 * FeatureStoreReader over exactly the manifest's sealed prefix. A
 * StoreView pins one snapshot (shared ownership), so everything the
 * read side already knows how to do — cursors, readRange, the full
 * query engine with zone-map pushdown — runs unchanged against a
 * view while the writer keeps appending: the view simply never
 * describes the unsealed tail.
 *
 * Consistency model (names_view / names_commit style): refresh()
 * either adopts a whole newer manifest or keeps the current
 * snapshot untouched — there is no intermediate state. Adoption is
 * defended in depth: the manifest frame is CRC-checked, its index
 * is structurally validated, the data file must be at least as long
 * as the prefix the manifest claims, and every *newly indexed*
 * block is CRC-checked and fully decoded before the snapshot is
 * published (blocks already covered by the previous snapshot are
 * immutable and were validated when first adopted). A lying kernel
 * that tears the data file while manifests keep arriving therefore
 * cannot produce a view with a torn record — the refresh is
 * rejected and the reader keeps serving its last good snapshot.
 *
 * Degradation model: nothing here is fatal. A missing manifest, a
 * torn frame, an injected read fault, a manifest ahead of the data
 * file — all reject one refresh and leave the previous snapshot
 * serving. A writer that stops publishing trips the stall deadline
 * and the reader degrades to a static terminal view: the store's
 * footer if the writer actually finished (Final), else the best
 * salvage-consistent prefix it can prove (WriterLost). Mirrors the
 * Region::setCommDeadline discipline — a dead peer degrades the
 * consumer, never kills it.
 *
 * Threading: refresh()/waitForAdvance() must come from one thread
 * (the poll loop); view()/state()/generation() are safe from any
 * thread, and the snapshots themselves are immutable, so any number
 * of threads may hold views and run cursors concurrently.
 */

#ifndef TDFE_STORE_LIVE_HH
#define TDFE_STORE_LIVE_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "store/query.hh"
#include "store/reader.hh"

namespace tdfe
{

namespace store
{
struct LiveManifest;
}

/** Knobs of one live reader. */
struct LiveViewOptions
{
    /** How data-file and manifest reads are opened (empty: OS
     *  files). Fault plans injected here exercise every reject /
     *  keep-last-snapshot path. */
    store::ReadFileFactory fileFactory;
    /** waitForAdvance backoff: first sleep, doubling per idle poll
     *  up to the cap. @{ */
    int pollMinUs = 500;
    int pollMaxUs = 50000;
    /** @} */
    /** Seconds without an accepted advance before waitForAdvance
     *  declares the writer lost and degrades to a static view
     *  (<= 0: wait forever). */
    double stallDeadlineSeconds = 30.0;
    /** CRC + fully decode newly indexed blocks before adopting a
     *  manifest. The torn-data defence; tests disable it only to
     *  prove it is what stands between a lying kernel and a torn
     *  record. */
    bool validateBlocks = true;
};

/** Lifecycle of a live reader. */
enum class LiveState
{
    /** No snapshot yet (no manifest has ever been accepted). */
    Waiting,
    /** Following a writer that may still publish. */
    Live,
    /** Writer finished (final manifest or intact footer); the
     *  current snapshot is the whole store. */
    Final,
    /** Stall deadline tripped without a final manifest: the current
     *  snapshot is a static salvage-consistent prefix and will
     *  never advance. */
    WriterLost,
};

/** @return human-readable name of @p s (logs, tools). */
const char *liveStateName(LiveState s);

struct LiveSnapshot;

/**
 * A pinned snapshot: one immutable sealed prefix of the store.
 * Copyable; copies share the pin. The underlying reader stays valid
 * for as long as any view holds it, regardless of what the writer
 * or later refreshes do.
 */
class StoreView
{
  public:
    /** Invalid view (reader() is fatal until assigned). */
    StoreView() = default;

    /** @return true when this view pins a snapshot. */
    bool valid() const { return snap_ != nullptr; }

    /** @return the pinned reader (fatal on an invalid view — pin
     *  before use is the caller contract). Cursors, readRange, and
     *  QueryCursor over it behave exactly as on a finished store. */
    const FeatureStoreReader &reader() const;

    /** @return manifest generation this view pins (0: invalid). */
    std::uint64_t generation() const;

    /** @return true when the writer declared this the last
     *  generation (clean finish or degraded finish). */
    bool final() const;

    /** @return true when the writer finished degraded — the store
     *  holds only a partial trace (the view itself is still fully
     *  consistent). */
    bool degraded() const;

    /** Conveniences over reader(). @{ */
    std::size_t recordCount() const;
    std::size_t blockCount() const;
    /** @} */

  private:
    friend class LiveStoreReader;
    explicit StoreView(std::shared_ptr<const LiveSnapshot> snap)
        : snap_(std::move(snap))
    {
    }

    std::shared_ptr<const LiveSnapshot> snap_;
};

/**
 * Follows the live manifest of one store. Construct, then poll:
 * refresh() makes one adopt-or-reject attempt, waitForAdvance()
 * wraps it in the backoff/stall loop. view() pins the current
 * snapshot at any time (an invalid view before the first accept).
 */
class LiveStoreReader
{
  public:
    explicit LiveStoreReader(std::string store_path,
                             LiveViewOptions options = LiveViewOptions());

    LiveStoreReader(const LiveStoreReader &) = delete;
    LiveStoreReader &operator=(const LiveStoreReader &) = delete;

    /** @return store path this reader follows. */
    const std::string &path() const { return path_; }

    /** @return true once any snapshot has been adopted. */
    bool attached() const { return generation() != 0; }

    /** @return lifecycle state (safe from any thread). */
    LiveState
    state() const
    {
        return state_.load(std::memory_order_acquire);
    }

    /** @return newest adopted generation (0 before the first). */
    std::uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_acquire);
    }

    /** @return pin on the current snapshot (invalid before the
     *  first accepted manifest). Safe from any thread. */
    StoreView view() const;

    /**
     * One poll: read the manifest sidecar, validate, adopt if it is
     * a newer generation. Never blocks beyond the I/O itself and
     * never throws away a good snapshot — every failure (missing or
     * torn manifest, data file shorter than claimed, a newly
     * indexed block that fails CRC/decode, injected read fault)
     * rejects this attempt and keeps the previous snapshot serving.
     * Falls back to a footer-backed Final snapshot when no manifest
     * exists but the store is complete (a pre-live or cleaned-up
     * store). @return true when the view advanced.
     */
    bool refresh();

    /**
     * Poll with bounded exponential backoff until the view
     * advances, the store settles, or the stall deadline trips.
     * @param timeout_seconds give up (without degrading) after this
     *        long (< 0: bounded only by the stall deadline).
     * @return true when the view advanced; false when the reader is
     *         Final/WriterLost (nothing further will arrive) or the
     *         timeout expired.
     */
    bool waitForAdvance(double timeout_seconds = -1.0);

    /** @return refresh attempts rejected by validation since
     *  construction (torn manifests, short data files, bad blocks —
     *  the observable the fault tests assert on). */
    std::uint64_t
    refreshRejects() const
    {
        return rejects_.load(std::memory_order_acquire);
    }

    /** @return diagnostic of the most recent rejected refresh
     *  (empty when none was ever rejected). */
    std::string lastError() const;

  private:
    /** Validate @p m against the data file and adopt it as the new
     *  snapshot. @return false (with the reason in @p why) when
     *  validation rejects it. */
    bool adopt(const store::LiveManifest &m, std::string *why);

    /** Terminal degrade after a stall: footer-backed Final when the
     *  writer actually finished, else the best salvage-consistent
     *  static prefix (WriterLost). Never loses adopted records. */
    void degradeToStatic();

    /** Record a rejected refresh (sticky diagnostic + counter). */
    void rejectRefresh(const std::string &why);

    /** Publish @p snap as the current snapshot. */
    void publish(std::shared_ptr<const LiveSnapshot> snap,
                 LiveState state);

    std::string path_;
    LiveViewOptions opts_;

    mutable std::mutex mutex_; ///< guards snap_ and lastError_
    std::shared_ptr<const LiveSnapshot> snap_;
    std::string lastError_;

    std::atomic<LiveState> state_{LiveState::Waiting};
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<std::uint64_t> rejects_{0};

    /** Last accepted advance (stall-deadline clock; poll-thread
     *  only). */
    std::chrono::steady_clock::time_point lastAdvance_;
};

/**
 * Streaming tail over a live reader: yields every record the store
 * seals, in store order, exactly once, across any number of
 * snapshot advances — the consumer behind `tdfstool tail` and the
 * live dashboard. Blocks are immutable once sealed and newer
 * snapshots only append whole blocks, so the cursor resumes each
 * new snapshot at the first block it has not consumed.
 *
 * next() is non-blocking: false means "drained for now" — the
 * caller decides how to wait (typically LiveStoreReader::
 * waitForAdvance) and retries. done() reports when the stream can
 * never produce again. Single-threaded, like the Cursor it wraps.
 */
class TailCursor
{
  public:
    /** Tail @p live, yielding only records matching @p filter
     *  (default: everything). The live reader must outlive the
     *  cursor. */
    explicit TailCursor(LiveStoreReader &live,
                        EventFilter filter = EventFilter());

    /**
     * Decode the next matching sealed record into @p out.
     * @return true when a record was produced; false when every
     * sealed record visible so far has been consumed (retry after
     * the view advances).
     */
    bool next(FeatureRecord &out);

    /** @return true when the stream is over: the reader reached
     *  Final or WriterLost and every sealed record was consumed. */
    bool done() const;

    /** @return records delivered through next(). */
    std::size_t recordsDelivered() const { return delivered_; }

  private:
    LiveStoreReader *live_;
    EventFilter filter_;
    StoreView view_;
    /** Cursor into view_ (absent before the first pin). */
    std::unique_ptr<FeatureStoreReader::Cursor> cursor_;
    std::size_t blocksConsumed_ = 0;
    std::size_t delivered_ = 0;
    bool drained_ = false;
};

} // namespace tdfe

#endif // TDFE_STORE_LIVE_HH
