#include "store/query.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "obs/metrics.hh"

namespace tdfe
{

bool
MetricPredicate::matches(double v) const
{
    if (std::isnan(v))
        return false;
    switch (op) {
      case PredOp::Lt:
        return v < value;
      case PredOp::Le:
        return v <= value;
      case PredOp::Gt:
        return v > value;
      case PredOp::Ge:
        return v >= value;
      case PredOp::Eq:
        return v == value;
      case PredOp::Ne:
        return v != value;
    }
    return false;
}

bool
MetricPredicate::feasible(double lo, double hi) const
{
    if (lo > hi)
        return false; // empty interval: only NaNs in the block
    switch (op) {
      case PredOp::Lt:
        return lo < value;
      case PredOp::Le:
        return lo <= value;
      case PredOp::Gt:
        return hi > value;
      case PredOp::Ge:
        return hi >= value;
      case PredOp::Eq:
        return lo <= value && value <= hi;
      case PredOp::Ne:
        // Infeasible only when every value in the block equals the
        // predicate's — i.e. a constant column at exactly `value`.
        return !(lo == hi && lo == value);
    }
    return true;
}

std::size_t
metricColumnIndex(const std::string &name)
{
    for (std::size_t c = 0; c < StoreSchema::numFixedDoubleColumns;
         ++c)
        if (name == StoreSchema().doubleColumnName(c))
            return c;
    return static_cast<std::size_t>(-1);
}

bool
parseMetricPredicate(const std::string &text, MetricPredicate &out,
                     std::string *error)
{
    auto reject = [&](const std::string &msg) {
        if (error)
            *error = "bad predicate '" + text + "': " + msg;
        return false;
    };

    // Two-character operators first so "<=" never parses as "<".
    struct OpToken
    {
        const char *token;
        PredOp op;
    };
    static const OpToken ops[] = {
        {"<=", PredOp::Le}, {">=", PredOp::Ge}, {"==", PredOp::Eq},
        {"!=", PredOp::Ne}, {"<", PredOp::Lt},  {">", PredOp::Gt},
        {"=", PredOp::Eq},
    };
    std::size_t at = std::string::npos;
    const OpToken *found = nullptr;
    for (const OpToken &o : ops) {
        const std::size_t p = text.find(o.token);
        if (p != std::string::npos && (at == std::string::npos ||
                                       p < at)) {
            at = p;
            found = &o;
        }
    }
    if (!found)
        return reject("no comparison operator (<, <=, >, >=, ==, !=)");

    const std::string col = text.substr(0, at);
    const std::string val =
        text.substr(at + std::strlen(found->token));
    out.column = metricColumnIndex(col);
    if (out.column == static_cast<std::size_t>(-1))
        return reject("unknown metric column '" + col +
                      "' (wall_time, wavefront, predicted, mse)");
    if (val.empty())
        return reject("missing value");
    char *end = nullptr;
    out.value = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        return reject("cannot parse value '" + val + "'");
    out.op = found->op;
    return true;
}

bool
EventFilter::matches(const FeatureRecord &r) const
{
    const std::int64_t iter = r.iteration;
    if (iter < iterBegin || iter >= iterEnd)
        return false;
    if (hasAnalysis && r.analysis != analysis)
        return false;
    if (hasStop && r.stop != stop)
        return false;
    for (const MetricPredicate &p : predicates) {
        double v = 0.0;
        switch (p.column) {
          case 0:
            v = r.wallTime;
            break;
          case 1:
            v = r.wavefront;
            break;
          case 2:
            v = r.predicted;
            break;
          case 3:
            v = r.mse;
            break;
          default:
            return false; // unknown column matches nothing
        }
        if (!p.matches(v))
            return false;
    }
    return true;
}

QueryCursor::QueryCursor(const FeatureStoreReader &reader,
                         EventFilter filter)
    : reader_(&reader), filter_(std::move(filter))
{
}

bool
QueryCursor::blockMayMatch(std::size_t b) const
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (reader_->blockIterBounds(b, lo, hi) &&
        (hi < filter_.iterBegin || lo >= filter_.iterEnd))
        return false;
    const store::BlockZone *z = reader_->zone(b);
    if (!z)
        return true; // no statistics: must decode
    if (filter_.hasAnalysis &&
        (filter_.analysis < z->intMin[1] ||
         filter_.analysis > z->intMax[1]))
        return false;
    if (filter_.hasStop) {
        const std::int64_t want = filter_.stop ? 1 : 0;
        if (want < z->intMin[2] || want > z->intMax[2])
            return false;
    }
    for (const MetricPredicate &p : filter_.predicates) {
        if (p.column >= store::zoneDoubleColumns)
            return false; // matches() rejects every record too
        if (!p.feasible(z->dblMin[p.column], z->dblMax[p.column]))
            return false;
    }
    return true;
}

bool
QueryCursor::next(FeatureRecord &out)
{
    for (;;) {
        while (pos_ < count_) {
            const std::size_t i = pos_++;
            const std::int64_t iter = ints_[0][i];
            if (iter < filter_.iterBegin || iter >= filter_.iterEnd)
                continue;
            if (filter_.hasAnalysis &&
                ints_[1][i] != filter_.analysis)
                continue;
            if (filter_.hasStop &&
                (ints_[2][i] != 0) != filter_.stop)
                continue;
            bool good = true;
            for (const MetricPredicate &p : filter_.predicates) {
                if (p.column >= store::zoneDoubleColumns ||
                    !p.matches(dbls_[p.column][i])) {
                    good = false;
                    break;
                }
            }
            if (!good)
                continue;
            FeatureStoreReader::materialize(reader_->schema_, ints_,
                                            dbls_, i, out);
            return true;
        }

        // Find the next block the filter cannot rule out.
        for (;;) {
            if (block_ >= reader_->blockCount())
                return false;
            const std::size_t b = block_++;
            std::int64_t lo = 0;
            std::int64_t hi = 0;
            if (reader_->sortedByIteration() &&
                reader_->blockIterBounds(b, lo, hi) &&
                lo >= filter_.iterEnd) {
                // Sorted store: every later block is even later.
                block_ = reader_->blockCount();
                return false;
            }
            if (!blockMayMatch(b)) {
                static obs::Counter skipped(
                    "store.reader.blocks_zone_skipped_total");
                skipped.add();
                continue;
            }
            std::string detail;
            if (!reader_->decodeBlock(b, raw_, ints_, dbls_,
                                      &detail))
                TDFE_FATAL("corrupt feature store: ", detail);
            ++decoded_;
            count_ = ints_[0].size();
            pos_ = 0;
            break;
        }
    }
}

} // namespace tdfe
