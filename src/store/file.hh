/**
 * @file
 * File abstraction under the feature store, SQLite-VFS style: the
 * writer talks to a small StoreFile interface instead of a raw
 * stream, so the same code path runs against the production OsFile
 * (buffered POSIX I/O with an explicit durability policy) and
 * against the deterministic FaultyFile wrapper that injects the
 * failures HPC scratch filesystems actually produce — short writes,
 * transient EIO, ENOSPC, and crash-at-byte-N torn writes.
 *
 * Error model: every operation returns an IoError value instead of
 * latching hidden stream state. An IoError carries the errno-style
 * code, the file offset the failure happened at, and a
 * human-readable message, so the writer can retry transient
 * failures in place and surface exact offsets when it degrades.
 */

#ifndef TDFE_STORE_FILE_HH
#define TDFE_STORE_FILE_HH

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

namespace tdfe
{

namespace store
{

/**
 * When sealed blocks become durable. The store is an analysis
 * artifact, not the simulation's restart data, so the default
 * trades durability for speed; campaigns that must survive node
 * loss dial it up per seal.
 */
enum class DurabilityPolicy
{
    /** OS-buffered: blocks reach the kernel when stdio flushes.
     *  A process crash keeps everything written; a node crash can
     *  lose the tail (salvage recovers the sealed prefix). */
    None,
    /** flush() after every sealed block: a process crash loses at
     *  most the in-flight block, never a sealed one. */
    FlushPerSeal,
    /** fsync() after every sealed block: sealed blocks survive node
     *  loss. The expensive policy; see PERF.md for the cost table. */
    SyncPerSeal,
};

/** Parse "none" / "flush" / "fsync" (CLI plumbing). Fatal on other
 *  values so typos never silently weaken durability. */
DurabilityPolicy parseDurabilityPolicy(const std::string &name);

/** Inverse of parseDurabilityPolicy (logs, bench tables). */
const char *durabilityPolicyName(DurabilityPolicy policy);

/**
 * Outcome of one file operation. Default-constructed means success;
 * a nonzero code is an errno value (or the closest equivalent).
 */
struct IoError
{
    /** errno-style code; 0 means the operation succeeded. */
    int code = 0;
    /** File offset the failure occurred at (diagnostics). */
    std::uint64_t offset = 0;
    /** Human-readable detail, e.g. "short write (12/40 bytes)". */
    std::string message;

    bool ok() const { return code == 0; }

    /**
     * @return true when retrying the operation may succeed (EINTR,
     * EAGAIN, EIO — transient media or interconnect hiccups).
     * ENOSPC is deliberately not transient: a full scratch
     * filesystem does not drain within a retry budget, and burning
     * retries there just delays the degrade decision.
     */
    bool
    transientHint() const
    {
        return code == EINTR || code == EAGAIN || code == EIO;
    }
};

/**
 * Minimal sequential-write file interface. Implementations report
 * failures as values (IoError) and must stay usable after an error:
 * the writer retries transient failures by truncating back to the
 * last good offset and rewriting the block.
 */
class StoreFile
{
  public:
    virtual ~StoreFile() = default;

    /** Append @p n bytes. On failure, offset() reflects how far the
     *  write actually advanced (short writes land a prefix). */
    virtual IoError write(const void *data, std::size_t n) = 0;

    /** Push user-space buffers to the kernel. */
    virtual IoError flush() = 0;

    /** Make everything written so far durable (flush + fsync). */
    virtual IoError sync() = 0;

    /** Cut the file back to @p size bytes and reposition there —
     *  the retry path after a short or failed write. */
    virtual IoError truncateTo(std::uint64_t size) = 0;

    /** Flush and close. Idempotent; further writes fail EBADF. */
    virtual IoError close() = 0;

    /** @return bytes successfully written so far (current append
     *  position). */
    virtual std::uint64_t offset() const = 0;

    /** @return path for diagnostics. */
    virtual const std::string &path() const = 0;
};

/**
 * Create/truncate a production file at @p path. @return nullptr
 * with the reason in @p error when the file cannot be opened (the
 * caller decides whether that is fatal — the store writer degrades
 * instead of killing the simulation).
 */
std::unique_ptr<StoreFile> openOsFile(const std::string &path,
                                      IoError *error = nullptr);

/**
 * Read-side counterpart of StoreFile: random-access reads over an
 * immutable store file, so the reader fetches exactly the blocks a
 * query selects instead of slurping the whole file. readAt() must
 * be safe to call concurrently from many threads (one cursor per
 * thread is the reader's parallel-scan contract) — the production
 * implementation is a pread over one shared descriptor.
 */
class ReadFile
{
  public:
    virtual ~ReadFile() = default;

    /** Read exactly @p n bytes at @p offset into @p dst. A short
     *  read (EOF inside the range) is an error: the caller always
     *  knows the file extent it indexed. */
    virtual IoError readAt(std::uint64_t offset, void *dst,
                           std::size_t n) const = 0;

    /** @return total file size in bytes. */
    virtual std::uint64_t size() const = 0;

    /** @return path for diagnostics. */
    virtual const std::string &path() const = 0;
};

/**
 * Open @p path read-only. @return nullptr with the reason in
 * @p error when it cannot be opened or sized.
 */
std::unique_ptr<ReadFile> openOsReadFile(const std::string &path,
                                         IoError *error = nullptr);

/**
 * Pluggable read-side file opener. The reader and the live view
 * accept one of these so tests can interpose FaultyReadFile (or an
 * unopenable path) on every open/refresh; a default-constructed
 * (empty) factory means openOsReadFile.
 */
using ReadFileFactory = std::function<std::unique_ptr<ReadFile>(
    const std::string &, IoError *)>;

/** @return @p factory(path, error), or openOsReadFile(path, error)
 *  when @p factory is empty — the one place the default is chosen,
 *  so every read path honors injection identically. */
std::unique_ptr<ReadFile> openReadFileVia(
    const ReadFileFactory &factory, const std::string &path,
    IoError *error = nullptr);

/**
 * Read-side counterpart of FaultPlan: the failures a reader sees
 * from HPC scratch filesystems — transient EIO on a block fetch,
 * short reads near a torn tail. Offsets are absolute file offsets
 * (the read side is random-access, so logical append offsets do not
 * apply).
 */
struct ReadFaultPlan
{
    enum class Kind
    {
        /** Pass-through. */
        None,
        /**
         * Reads touching [atByte, ∞) fail with @c errCode after
         * optionally delivering the bytes below the mark
         * (shortRead). Fires @c failCount times across all readers,
         * then heals — the transient-retry / refresh-retry knob.
         */
        ErrorAt,
    };

    Kind kind = Kind::None;
    /** Absolute byte offset the fault triggers at. */
    std::uint64_t atByte = 0;
    /** errno delivered by ErrorAt (EIO, ...). */
    int errCode = EIO;
    /** ErrorAt firings before the file heals (INT_MAX: never). */
    int failCount = INT_MAX;
    /** Deliver the bytes below atByte before failing (the short
     *  read a reader racing a truncation observes). */
    bool shortRead = false;
};

/**
 * Deterministic fault-injection wrapper around another ReadFile.
 * readAt stays safe to call from many threads (the fault counter is
 * atomic), matching the contract cursors rely on.
 */
class FaultyReadFile final : public ReadFile
{
  public:
    FaultyReadFile(std::unique_ptr<ReadFile> inner,
                   ReadFaultPlan plan);

    IoError readAt(std::uint64_t offset, void *dst,
                   std::size_t n) const override;
    std::uint64_t size() const override { return inner_->size(); }
    const std::string &path() const override
    {
        return inner_->path();
    }

    /** @return ErrorAt faults still pending (0: healed). */
    int
    remainingFaults() const
    {
        const int r = remaining_.load(std::memory_order_relaxed);
        return r > 0 ? r : 0;
    }

  private:
    std::unique_ptr<ReadFile> inner_;
    ReadFaultPlan plan_;
    mutable std::atomic<int> remaining_;
};

/**
 * Deterministic fault plan of a FaultyFile. Offsets are logical
 * append offsets (bytes the writer believes it has written), so a
 * plan is reproducible regardless of buffering underneath.
 */
struct FaultPlan
{
    enum class Kind
    {
        /** Pass-through. */
        None,
        /**
         * Torn write at @c atByte: bytes below the mark reach the
         * underlying file, everything at or past it is silently
         * dropped while the writer is told all is well — exactly
         * what a node crash (or power loss under DurabilityPolicy::
         * None) does to page-cached data. The resulting file is the
         * byte-exact honest prefix, the input of the salvage sweep.
         */
        Crash,
        /**
         * Writes crossing @c atByte fail with @c errCode after
         * optionally landing the bytes below the mark (shortWrite).
         * Fires @c failCount times, then the file heals — the
         * transient-retry test knob. The writer's retry truncates
         * back and rewrites, re-crossing the mark, so failCount is
         * exactly the number of failed attempts.
         */
        ErrorAt,
    };

    Kind kind = Kind::None;
    /** Logical byte offset the fault triggers at. */
    std::uint64_t atByte = 0;
    /** errno delivered by ErrorAt (EIO, ENOSPC, ...). */
    int errCode = EIO;
    /** ErrorAt firings before the file heals (INT_MAX: never). */
    int failCount = INT_MAX;
    /** Deliver the bytes below atByte before failing (torn write
     *  visible to the retry path). */
    bool shortWrite = false;
};

/**
 * Deterministic fault-injection wrapper around another StoreFile.
 * Single-threaded like its user (the writer serializes flushes);
 * faults fire on the write path only — flush/sync/close pass
 * through (and silently succeed in Crash mode, as a lying kernel
 * would).
 */
class FaultyFile final : public StoreFile
{
  public:
    FaultyFile(std::unique_ptr<StoreFile> inner, FaultPlan plan);

    IoError write(const void *data, std::size_t n) override;
    IoError flush() override;
    IoError sync() override;
    IoError truncateTo(std::uint64_t size) override;
    IoError close() override;
    std::uint64_t offset() const override { return offset_; }
    const std::string &path() const override
    {
        return inner_->path();
    }

    /** @return ErrorAt faults still pending (0: healed). */
    int remainingFaults() const { return remaining_; }

  private:
    std::unique_ptr<StoreFile> inner_;
    FaultPlan plan_;
    /** Logical append offset (what the writer believes). */
    std::uint64_t offset_ = 0;
    int remaining_ = 0;
};

} // namespace store

} // namespace tdfe

#endif // TDFE_STORE_FILE_HH
