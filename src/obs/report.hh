/**
 * @file
 * Run-level telemetry surface: the RunReport carried in the
 * runners' RunResult structs and the periodic heartbeat line.
 *
 * A RunReport is just a captured MetricsSnapshot plus a one-line
 * human summary; runners fill it at the end of a run (when
 * telemetry was enabled) so callers get counter evidence — records
 * appended, blocks sealed, bytes written, stalls — without touching
 * the registry themselves.
 */

#ifndef TDFE_OBS_REPORT_HH
#define TDFE_OBS_REPORT_HH

#include <cstdint>
#include <string>

#include "obs/metrics.hh"

namespace tdfe
{

namespace obs
{

/** End-of-run telemetry section of a runner's RunResult. */
struct RunReport
{
    /** False when telemetry was off — metrics is then empty. */
    bool enabled = false;
    MetricsSnapshot metrics;

    /** One-line digest of the headline counters (solver steps,
     *  records, seals, bytes, degrades), for logs and tests. */
    std::string summary() const;
};

/** Snapshot the registry into a RunReport (enabled reflects
 *  metricsEnabled() at call time). */
RunReport captureRunReport();

/**
 * Periodic one-line metrics summary over inform(). Construct with
 * the --metrics-every period (0 disables) and call tick(iter) once
 * per solver iteration; every @p every iterations it emits e.g.
 *
 *   heartbeat iter=200 steps=200 records=1400 seals=3
 *   bytes=41872 stalls=0 degrades=0
 *
 * Values come from a registry snapshot, so the heartbeat costs one
 * mutexed merge per period — never per iteration.
 */
class Heartbeat
{
  public:
    explicit Heartbeat(std::uint64_t every) : every_(every) {}

    /** Emit the line when @p iter is a positive multiple of the
     *  period. @return true when a line was emitted. */
    bool tick(std::uint64_t iter);

  private:
    std::uint64_t every_;
};

} // namespace obs

} // namespace tdfe

#endif // TDFE_OBS_REPORT_HH
