/**
 * @file
 * Tracing half of the telemetry layer (src/obs): scoped span timers
 * recording begin/end into per-thread ring buffers, exported as
 * Chrome `trace_event` JSON (load in Perfetto or chrome://tracing).
 *
 * Two layers, deliberately separate:
 *
 *  - SpanTimer is the *measurement*: it reads the steady clock at
 *    construction and at stop(), and returns the elapsed seconds —
 *    exactly like base/timer.hh's Timer, and it does so whether or
 *    not tracing is enabled. Code that folds the measured time into
 *    simulation-visible state (e.g. `Region::overheadSeconds`)
 *    accumulates SpanTimer::stop()'s return value, so the doubles
 *    the simulation sees are identical with tracing on or off; only
 *    the *event recording* is gated. This is what lets
 *    bench/obs_overhead demand the trace-derived exposed-analysis
 *    time match `overheadSeconds` byte-identically.
 *  - The ring buffer is the *recording*: fixed-capacity per-thread
 *    event arrays. The owning thread writes the event slot first and
 *    publishes with a release store of the size; the exporter reads
 *    the size with an acquire load, so the TSan battery sees a clean
 *    happens-before edge and no lock ever appears on the hot path.
 *    When a buffer fills, new events are dropped (drop-newest) and
 *    counted — old events are never overwritten, so a truncated
 *    trace is still well-nested.
 *
 * Span names are part of the tool surface like metric names (see
 * PERF.md "Telemetry" for the taxonomy). The `region.exposed.*`
 * prefix is load-bearing: summing those spans' durations per region
 * reconstructs `Region::overheadSeconds`.
 */

#ifndef TDFE_OBS_TRACE_HH
#define TDFE_OBS_TRACE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tdfe
{

namespace obs
{

/** @return true while span begin/end events are recorded. */
bool traceEnabled();

/** Turn span recording on or off (relaxed global, like metrics). */
void setTraceEnabled(bool enabled);

/** Per-thread ring capacity in events. Takes effect for buffers
 *  created after the call (threads that already traced keep their
 *  size). Default 1 << 16 events per thread. */
void setTraceCapacity(std::size_t events);

/** Seconds since an arbitrary process-wide steady epoch; the time
 *  base of every recorded event. */
double traceNow();

/**
 * One recorded complete span ("ph":"X"): [start, start+dur) seconds
 * on the trace clock, on thread @p tid.
 */
struct TraceEvent
{
    /** Span name; static storage duration (interned literals). */
    const char *name;
    /** Category; static storage duration. */
    const char *cat;
    double start;
    double dur;
    std::uint32_t tid;
};

/**
 * Scoped measurement of one span. Always measures; records a
 * TraceEvent at stop time only when tracing is enabled.
 *
 *     obs::SpanTimer span("region.exposed.end", "region");
 *     ... work ...
 *     overhead += span.stop();   // same double, traced or not
 *
 * The destructor stops an unstopped span (for pure scope timing
 * where nobody wants the value). stop() is idempotent.
 */
class SpanTimer
{
  public:
    /** Start the span now. @p name / @p cat must have static
     *  storage duration. */
    explicit SpanTimer(const char *name, const char *cat = "tdfe");

    SpanTimer(const SpanTimer &) = delete;
    SpanTimer &operator=(const SpanTimer &) = delete;

    ~SpanTimer();

    /** End the span, record it (if tracing), and @return elapsed
     *  seconds — computed identically whether tracing is on. */
    double stop();

  private:
    const char *name_;
    const char *cat_;
    double start_;
    bool stopped_ = false;
};

/** Record an externally timed complete span (begin at @p start on
 *  the traceNow() clock, @p dur seconds, calling thread's tid).
 *  No-op when tracing is disabled. */
void recordSpan(const char *name, const char *cat, double start,
                double dur);

/** Record an instant event ("ph":"i") at traceNow(). */
void recordInstant(const char *name, const char *cat = "tdfe");

/**
 * Serialize every thread's buffered events as a Chrome trace_event
 * JSON document: {"schema": "tdfe.trace.v1", "displayTimeUnit":
 * "ms", "traceEvents": [{"name", "cat", "ph", "pid", "tid", "ts",
 * "dur"}, ...]}. "ts"/"dur" are microseconds printed with %.17g so
 * durations round-trip to ~1e-15 s. Events are emitted per thread
 * in record order; dropped-event counts appear as
 * "obs.trace.dropped" instant events per affected thread.
 */
std::string exportChromeTrace();

/** exportChromeTrace() to @p path. @return success. */
bool writeChromeTrace(const std::string &path);

/** Discard all buffered events in every thread's ring (buffers and
 *  tids survive). Quiesce recorders first, as with resetMetrics. */
void clearTrace();

/** Total events currently buffered across threads (diagnostic). */
std::size_t traceEventCount();

/** Total events dropped because a ring was full. */
std::uint64_t traceDroppedCount();

} // namespace obs

} // namespace tdfe

#endif // TDFE_OBS_TRACE_HH
