/**
 * @file
 * Minimal recursive-descent JSON reader for the telemetry tools.
 *
 * This exists so `tdfstool metrics`, `bench/obs_overhead`, and the
 * obs tests can *validate and read back* the documents the library
 * emits (tdfe.metrics.v1, tdfe.trace.v1) without any external
 * dependency. It is a strict-enough general JSON parser (objects,
 * arrays, strings with escapes, numbers, true/false/null), but it
 * is tuned for telemetry-sized inputs — values are owned copies,
 * object lookup is linear — not a general-purpose library.
 */

#ifndef TDFE_OBS_JSON_HH
#define TDFE_OBS_JSON_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tdfe
{

namespace obs
{

/** One parsed JSON value (tree node). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    /** Object members in document order (duplicate keys kept). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return member @p key of an object, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /** @return number value of member @p key (@p def if absent or
     *  not a number). */
    double numberAt(const std::string &key, double def = 0.0) const;

    /** @return string value of member @p key ("" if absent). */
    std::string stringAt(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document. @return true and fill @p out
 * on success; on failure @return false and set @p error to a
 * message with a byte offset.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Read @p path and parse it. @return as parseJson; a missing or
 *  unreadable file is reported through @p error too. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string &error);

} // namespace obs

} // namespace tdfe

#endif // TDFE_OBS_JSON_HH
