/**
 * @file
 * Metrics half of the telemetry layer (src/obs): a process-wide
 * registry of named counters, gauges, and histograms with
 * per-thread sharded accumulation.
 *
 * Design constraints, in order:
 *
 *  1. The hot path must never perturb the simulation. An update is
 *     one relaxed atomic load (the enable gate) plus a store into a
 *     thread-private shard cell — no locks, no allocation after the
 *     first touch, no cross-thread cache-line traffic. Metrics can
 *     therefore stay enabled on the solver/store hot paths and the
 *     physics digests remain bitwise identical (gated by
 *     bench/obs_overhead).
 *  2. Deterministic aggregation. snapshotMetrics() merges shards in
 *     a fixed registration order under the registry lock. Integer
 *     counters and histogram bucket counts are exact sums and thus
 *     independent of scheduling; two identical runs report identical
 *     values for deterministic counters (records appended, blocks
 *     sealed, blocks decoded, ...). Histogram double sums are the
 *     one order-sensitive aggregate and are documented as
 *     last-ulp-approximate across schedules.
 *  3. Stable names. Metric names are part of the tool surface
 *     (PERF.md catalogs them; tdfstool metrics and the BENCH JSONs
 *     key on them) — treat renames like file-format changes.
 *
 * Handles are cheap value types meant to be function-local statics
 * at the instrumentation site:
 *
 *     static obs::Counter seals("store.writer.blocks_sealed_total");
 *     seals.add();
 *
 * Registration is idempotent by name, so several sites may share a
 * metric. The registry is fixed-capacity (see maxCounters etc.);
 * exhausting it is a caller bug and panics.
 */

#ifndef TDFE_OBS_METRICS_HH
#define TDFE_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tdfe
{

namespace obs
{

/** Registry capacity (handles registered process-wide, not values).
 *  Fixed so shard cell arrays never reallocate under a concurrent
 *  snapshot. @{ */
constexpr std::size_t maxCounters = 256;
constexpr std::size_t maxGauges = 64;
constexpr std::size_t maxHistograms = 64;
/** @} */

/** Histogram bucket count: bucket b counts observations in
 *  [1ns * 2^b, 1ns * 2^(b+1)), so 48 buckets span ~1ns to ~3days —
 *  every duration the library can plausibly observe. */
constexpr std::size_t histogramBuckets = 48;

/** @return true while metric updates are recorded (default off —
 *  the registry itself always works; only the update sites gate). */
bool metricsEnabled();

/** Turn metric recording on or off (a relaxed global; flipping it
 *  mid-run simply stops/starts accumulation). */
void setMetricsEnabled(bool enabled);

/**
 * Monotonic event count. add() accumulates into the calling
 * thread's shard; the true total exists only at snapshot time.
 */
class Counter
{
  public:
    /** Register (or find) the counter named @p name. The name must
     *  be a string with static storage duration. */
    explicit Counter(const char *name);

    /** Count @p delta events (hot-path safe, see file comment). */
    void add(std::uint64_t delta = 1);

  private:
    std::uint32_t slot_;
};

/**
 * Last-write-wins instantaneous value (process-level, not sharded:
 * gauges are set from bookkeeping code, not hot loops).
 */
class Gauge
{
  public:
    explicit Gauge(const char *name);

    void set(double value);
    double get() const;

  private:
    std::uint32_t slot_;
};

/**
 * Distribution of double observations (typically span durations in
 * seconds) in power-of-two buckets, with exact count and
 * shard-merged sum/min/max.
 */
class Histogram
{
  public:
    explicit Histogram(const char *name);

    /** Record one observation (hot-path safe; NaN is dropped). */
    void observe(double value);

  private:
    std::uint32_t slot_;
};

/** Aggregated state of one histogram at snapshot time. */
struct HistogramStats
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Sparse buckets: (bucket index, count), index as documented
     *  at histogramBuckets. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

/**
 * Point-in-time aggregation of every registered metric, merged
 * across shards in registration order and sorted by name.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramStats> histograms;

    /** @return value of counter @p name (0 when absent). */
    std::uint64_t counter(const std::string &name) const;

    /** @return value of gauge @p name (@p def when absent). */
    double gauge(const std::string &name, double def = 0.0) const;

    /**
     * Serialize as the tdfe.metrics.v1 JSON document (see PERF.md;
     * `tdfstool metrics` pretty-prints it and obs::parseJson reads
     * it back):
     *
     *   {"schema": "tdfe.metrics.v1",
     *    "counters": {...}, "gauges": {...},
     *    "histograms": {"name": {"count":, "sum":, "min":, "max":,
     *                            "buckets": [[b, n], ...]}, ...}}
     */
    std::string toJson() const;
};

/** Aggregate all shards now (locks out registration + other
 *  snapshots; updates racing the snapshot land in the next one). */
MetricsSnapshot snapshotMetrics();

/** snapshotMetrics().toJson() in one call. */
std::string metricsSnapshotJson();

/** Write the snapshot JSON to @p path. @return success. */
bool writeMetricsJson(const std::string &path);

/**
 * Zero every counter/gauge/histogram cell in every shard (the
 * registered names survive). Callers must quiesce concurrent
 * updaters first — the reset itself is safe, but updates racing it
 * land unpredictably on either side. Benches and the determinism
 * tests reset between reps.
 */
void resetMetrics();

/**
 * Count one degrade event for @p subsystem: increments the
 * `degrade_total.<subsystem>` counter (registered on first use —
 * the one registry entry point keyed by a runtime name; @p
 * subsystem must come from the small fixed set of degrade sites,
 * see the catalog in PERF.md). base/logging's warnOnce()/
 * warnDegraded() call this so every one-shot degrade warning is
 * also a counter.
 */
void addDegrade(const char *subsystem);

} // namespace obs

} // namespace tdfe

#endif // TDFE_OBS_METRICS_HH
