#include "obs/trace.hh"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace tdfe
{

namespace obs
{

namespace
{

std::atomic<bool> enabledFlag{false};
std::atomic<std::size_t> ringCapacity{std::size_t(1) << 16};
std::atomic<std::uint64_t> droppedTotal{0};

/**
 * One thread's event ring. Only the owning thread writes; the
 * exporter reads under the registry mutex using the release/acquire
 * pair on `size` to see fully written slots. Drop-newest on full:
 * existing slots are never rewritten, so no write-write race with a
 * concurrent export is possible.
 */
struct TraceBuffer
{
    explicit TraceBuffer(std::size_t cap, std::uint32_t tid)
        : events(cap), tid(tid)
    {
    }

    std::vector<TraceEvent> events;
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;

    void
    push(const char *name, const char *cat, double start, double dur)
    {
        const std::size_t n = size.load(std::memory_order_relaxed);
        if (n >= events.size()) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            droppedTotal.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        events[n] = TraceEvent{name, cat, start, dur, tid};
        size.store(n + 1, std::memory_order_release);
    }
};

struct TraceRegistry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
    std::uint32_t nextTid = 1;
};

TraceRegistry &
traceRegistry()
{
    static TraceRegistry *r = new TraceRegistry();
    return *r;
}

TraceBuffer &
localBuffer()
{
    thread_local TraceBuffer *buf = nullptr;
    if (!buf) {
        TraceRegistry &r = traceRegistry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.buffers.push_back(std::make_unique<TraceBuffer>(
            ringCapacity.load(std::memory_order_relaxed),
            r.nextTid++));
        buf = r.buffers.back().get();
    }
    return *buf;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

bool
traceEnabled()
{
    return enabledFlag.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool enabled)
{
    // Touch the epoch before the first span so traceNow() deltas
    // never cross the lazy-init of the static.
    traceEpoch();
    enabledFlag.store(enabled, std::memory_order_relaxed);
}

void
setTraceCapacity(std::size_t events)
{
    ringCapacity.store(events ? events : 1,
                       std::memory_order_relaxed);
}

double
traceNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - traceEpoch())
        .count();
}

SpanTimer::SpanTimer(const char *name, const char *cat)
    : name_(name), cat_(cat), start_(traceNow())
{
}

SpanTimer::~SpanTimer()
{
    if (!stopped_)
        stop();
}

double
SpanTimer::stop()
{
    if (stopped_)
        return 0.0;
    stopped_ = true;
    // The subtraction runs unconditionally: the elapsed double the
    // caller accumulates is identical with tracing on or off.
    const double dur = traceNow() - start_;
    if (traceEnabled())
        localBuffer().push(name_, cat_, start_, dur);
    return dur;
}

void
recordSpan(const char *name, const char *cat, double start,
           double dur)
{
    if (traceEnabled())
        localBuffer().push(name, cat, start, dur);
}

void
recordInstant(const char *name, const char *cat)
{
    if (traceEnabled())
        localBuffer().push(name, cat, traceNow(), -1.0);
}

std::string
exportChromeTrace()
{
    auto num = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    std::string j = "{\n\"schema\": \"tdfe.trace.v1\",\n"
                    "\"displayTimeUnit\": \"ms\",\n"
                    "\"traceEvents\": [";
    bool first = true;
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto &buf : r.buffers) {
        const std::size_t n =
            buf->size.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &e = buf->events[i];
            j += first ? "\n" : ",\n";
            first = false;
            const bool instant = e.dur < 0.0;
            j += std::string("{\"name\": \"") + e.name +
                 "\", \"cat\": \"" + e.cat + "\", \"ph\": \"" +
                 (instant ? "i" : "X") + "\", \"pid\": 1, \"tid\": " +
                 std::to_string(e.tid) +
                 ", \"ts\": " + num(e.start * 1e6);
            if (instant)
                j += ", \"s\": \"t\"";
            else
                j += ", \"dur\": " + num(e.dur * 1e6);
            j += "}";
        }
        const std::uint64_t dropped =
            buf->dropped.load(std::memory_order_relaxed);
        if (dropped) {
            j += first ? "\n" : ",\n";
            first = false;
            j += "{\"name\": \"obs.trace.dropped\", \"cat\": "
                 "\"obs\", \"ph\": \"i\", \"pid\": 1, \"tid\": " +
                 std::to_string(buf->tid) +
                 ", \"ts\": " + num(traceNow() * 1e6) +
                 ", \"s\": \"t\", \"args\": {\"count\": " +
                 std::to_string(dropped) + "}}";
        }
    }
    j += "\n]\n}\n";
    return j;
}

bool
writeChromeTrace(const std::string &path)
{
    const std::string j = exportChromeTrace();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(j.data(), 1, j.size(), f) == j.size();
    return (std::fclose(f) == 0) && ok;
}

void
clearTrace()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto &buf : r.buffers) {
        buf->size.store(0, std::memory_order_release);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
    droppedTotal.store(0, std::memory_order_relaxed);
}

std::size_t
traceEventCount()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::size_t total = 0;
    for (const auto &buf : r.buffers)
        total += buf->size.load(std::memory_order_acquire);
    return total;
}

std::uint64_t
traceDroppedCount()
{
    return droppedTotal.load(std::memory_order_relaxed);
}

} // namespace obs

} // namespace tdfe
