#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "base/logging.hh"

namespace tdfe
{

namespace obs
{

namespace
{

std::atomic<bool> enabledFlag{false};

/**
 * One thread's accumulation cells. Fixed capacity so the arrays
 * never reallocate: the owning thread writes relaxed stores, a
 * snapshot reads relaxed loads, and the only synchronization is the
 * registry mutex taken at registration and snapshot time. Shards
 * are owned by the registry and outlive their threads, so counts
 * from exited pool workers keep contributing.
 */
struct Shard
{
    std::array<std::atomic<std::uint64_t>, maxCounters> counters{};
    std::array<std::atomic<std::uint64_t>,
               maxHistograms * histogramBuckets>
        buckets{};
    std::array<std::atomic<std::uint64_t>, maxHistograms> histCount{};
    std::array<std::atomic<double>, maxHistograms> histSum{};
    std::array<std::atomic<double>, maxHistograms> histMin{};
    std::array<std::atomic<double>, maxHistograms> histMax{};

    Shard()
    {
        for (auto &m : histMin)
            m.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
        for (auto &m : histMax)
            m.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    }
};

struct Registry
{
    std::mutex mutex;
    /** name -> slot, per kind; names registered once, never freed. */
    std::map<std::string, std::uint32_t> counterSlots;
    std::map<std::string, std::uint32_t> gaugeSlots;
    std::map<std::string, std::uint32_t> histogramSlots;
    /** Gauges are process-level cells, not sharded. */
    std::array<std::atomic<double>, maxGauges> gauges{};
    /** Shards in registration order (deterministic merge order). */
    std::vector<std::unique_ptr<Shard>> shards;
};

Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

/** The calling thread's shard, registered on first use. */
Shard &
localShard()
{
    thread_local Shard *shard = nullptr;
    if (!shard) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.shards.push_back(std::make_unique<Shard>());
        shard = r.shards.back().get();
    }
    return *shard;
}

std::uint32_t
registerSlot(std::map<std::string, std::uint32_t> &slots,
             std::size_t cap, const char *kind, const char *name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = slots.find(name);
    if (it != slots.end())
        return it->second;
    if (slots.size() >= cap) {
        TDFE_PANIC("obs: ", kind, " registry full (", cap,
                   " slots) registering '", name, "'");
    }
    const auto slot = static_cast<std::uint32_t>(slots.size());
    slots.emplace(name, slot);
    return slot;
}

/** Relaxed non-RMW add: the cell is thread-private by design. */
inline void
shardAdd(std::atomic<std::uint64_t> &cell, std::uint64_t delta)
{
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

/** Bucket of @p v seconds: power-of-two nanosecond decades. */
inline std::uint32_t
bucketOf(double v)
{
    const double ns = v * 1e9;
    if (!(ns > 1.0))
        return 0;
    int exp = 0;
    std::frexp(ns, &exp); // ns in [2^(exp-1), 2^exp)
    const int b = exp - 1;
    return static_cast<std::uint32_t>(std::min<int>(
        std::max(b, 0), static_cast<int>(histogramBuckets) - 1));
}

} // namespace

bool
metricsEnabled()
{
    return enabledFlag.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool enabled)
{
    enabledFlag.store(enabled, std::memory_order_relaxed);
}

Counter::Counter(const char *name)
    : slot_(registerSlot(registry().counterSlots, maxCounters,
                         "counter", name))
{
}

void
Counter::add(std::uint64_t delta)
{
    if (!metricsEnabled())
        return;
    shardAdd(localShard().counters[slot_], delta);
}

Gauge::Gauge(const char *name)
    : slot_(registerSlot(registry().gaugeSlots, maxGauges, "gauge",
                         name))
{
}

void
Gauge::set(double value)
{
    if (!metricsEnabled())
        return;
    registry().gauges[slot_].store(value, std::memory_order_relaxed);
}

double
Gauge::get() const
{
    return registry().gauges[slot_].load(std::memory_order_relaxed);
}

Histogram::Histogram(const char *name)
    : slot_(registerSlot(registry().histogramSlots, maxHistograms,
                         "histogram", name))
{
}

void
Histogram::observe(double value)
{
    if (!metricsEnabled() || std::isnan(value))
        return;
    Shard &s = localShard();
    shardAdd(s.buckets[slot_ * histogramBuckets + bucketOf(value)],
             1);
    shardAdd(s.histCount[slot_], 1);
    auto &sum = s.histSum[slot_];
    sum.store(sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
    auto &mn = s.histMin[slot_];
    if (value < mn.load(std::memory_order_relaxed))
        mn.store(value, std::memory_order_relaxed);
    auto &mx = s.histMax[slot_];
    if (value > mx.load(std::memory_order_relaxed))
        mx.store(value, std::memory_order_relaxed);
}

void
addDegrade(const char *subsystem)
{
    // Registered lazily by runtime name: degrade sites are a small
    // fixed set, so this cannot exhaust the registry; the map lookup
    // is fine on what is by definition a cold path.
    Counter c((std::string("degrade_total.") + subsystem).c_str());
    c.add();
}

MetricsSnapshot
snapshotMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    MetricsSnapshot snap;

    snap.counters.reserve(r.counterSlots.size());
    for (const auto &[name, slot] : r.counterSlots) {
        std::uint64_t total = 0;
        for (const auto &shard : r.shards)
            total += shard->counters[slot].load(
                std::memory_order_relaxed);
        snap.counters.emplace_back(name, total);
    }

    snap.gauges.reserve(r.gaugeSlots.size());
    for (const auto &[name, slot] : r.gaugeSlots)
        snap.gauges.emplace_back(
            name, r.gauges[slot].load(std::memory_order_relaxed));

    snap.histograms.reserve(r.histogramSlots.size());
    for (const auto &[name, slot] : r.histogramSlots) {
        HistogramStats h;
        h.name = name;
        double mn = std::numeric_limits<double>::infinity();
        double mx = -std::numeric_limits<double>::infinity();
        std::array<std::uint64_t, histogramBuckets> buckets{};
        for (const auto &shard : r.shards) {
            h.count += shard->histCount[slot].load(
                std::memory_order_relaxed);
            h.sum += shard->histSum[slot].load(
                std::memory_order_relaxed);
            mn = std::min(mn, shard->histMin[slot].load(
                                  std::memory_order_relaxed));
            mx = std::max(mx, shard->histMax[slot].load(
                                  std::memory_order_relaxed));
            for (std::size_t b = 0; b < histogramBuckets; ++b)
                buckets[b] +=
                    shard->buckets[slot * histogramBuckets + b].load(
                        std::memory_order_relaxed);
        }
        h.min = h.count ? mn : 0.0;
        h.max = h.count ? mx : 0.0;
        for (std::size_t b = 0; b < histogramBuckets; ++b)
            if (buckets[b])
                h.buckets.emplace_back(
                    static_cast<std::uint32_t>(b), buckets[b]);
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

double
MetricsSnapshot::gauge(const std::string &name, double def) const
{
    for (const auto &[n, v] : gauges)
        if (n == name)
            return v;
    return def;
}

std::string
MetricsSnapshot::toJson() const
{
    auto num = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    // Metric names come from the fixed in-tree catalog (identifier
    // characters and dots), so no escaping is needed; quote anyway
    // for forward safety on ", \ and control bytes.
    auto esc = [](const std::string &s) {
        std::string out;
        for (const char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    std::string j = "{\n  \"schema\": \"tdfe.metrics.v1\",\n"
                    "  \"counters\": {";
    bool first = true;
    for (const auto &[n, v] : counters) {
        j += first ? "\n" : ",\n";
        j += "    \"" + esc(n) + "\": " + std::to_string(v);
        first = false;
    }
    j += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[n, v] : gauges) {
        j += first ? "\n" : ",\n";
        j += "    \"" + esc(n) + "\": " + num(v);
        first = false;
    }
    j += "\n  },\n  \"histograms\": {";
    first = true;
    for (const HistogramStats &h : histograms) {
        j += first ? "\n" : ",\n";
        j += "    \"" + esc(h.name) + "\": {\"count\": " +
             std::to_string(h.count) + ", \"sum\": " + num(h.sum) +
             ", \"min\": " + num(h.min) + ", \"max\": " + num(h.max) +
             ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (i)
                j += ", ";
            j += "[" + std::to_string(h.buckets[i].first) + ", " +
                 std::to_string(h.buckets[i].second) + "]";
        }
        j += "]}";
        first = false;
    }
    j += "\n  }\n}\n";
    return j;
}

std::string
metricsSnapshotJson()
{
    return snapshotMetrics().toJson();
}

bool
writeMetricsJson(const std::string &path)
{
    const std::string j = metricsSnapshotJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(j.data(), 1, j.size(), f) == j.size();
    return (std::fclose(f) == 0) && ok;
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto &g : r.gauges)
        g.store(0.0, std::memory_order_relaxed);
    for (const auto &shard : r.shards) {
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &b : shard->buckets)
            b.store(0, std::memory_order_relaxed);
        for (auto &c : shard->histCount)
            c.store(0, std::memory_order_relaxed);
        for (auto &s : shard->histSum)
            s.store(0.0, std::memory_order_relaxed);
        for (auto &m : shard->histMin)
            m.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
        for (auto &m : shard->histMax)
            m.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    }
}

} // namespace obs

} // namespace tdfe
