#include "obs/report.hh"

#include <sstream>

#include "base/logging.hh"

namespace tdfe
{

namespace obs
{

namespace
{

/** Sum of every degrade_total.* counter in @p snap. */
std::uint64_t
totalDegrades(const MetricsSnapshot &snap)
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : snap.counters)
        if (name.rfind("degrade_total.", 0) == 0)
            total += value;
    return total;
}

std::string
headline(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    os << "steps=" << snap.counter("solver.steps_total")
       << " records=" << snap.counter("store.writer.records_total")
       << " seals="
       << snap.counter("store.writer.blocks_sealed_total")
       << " bytes="
       << snap.counter("store.writer.bytes_written_total")
       << " stalls=" << snap.counter("comm.stalls_total")
       << " degrades=" << totalDegrades(snap);
    return os.str();
}

} // namespace

std::string
RunReport::summary() const
{
    if (!enabled)
        return "telemetry disabled";
    return headline(metrics);
}

RunReport
captureRunReport()
{
    RunReport report;
    report.enabled = metricsEnabled();
    if (report.enabled)
        report.metrics = snapshotMetrics();
    return report;
}

bool
Heartbeat::tick(std::uint64_t iter)
{
    if (!every_ || !iter || iter % every_ != 0)
        return false;
    TDFE_INFORM("heartbeat iter=", iter, " ",
                headline(snapshotMetrics()));
    return true;
}

} // namespace obs

} // namespace tdfe
