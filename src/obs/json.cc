#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tdfe
{

namespace obs
{

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // UTF-8 encode the BMP code point; surrogate
                    // pairs are beyond what our emitters produce.
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xC0 | (code >> 6));
                        out += char(0x80 | (code & 0x3F));
                    } else {
                        out += char(0xE0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3F));
                        out += char(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.items.push_back(std::move(item));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            if (text.compare(pos, 4, "true") != 0)
                return fail("bad literal");
            pos += 4;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (text.compare(pos, 5, "false") != 0)
                return fail("bad literal");
            pos += 5;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (text.compare(pos, 4, "null") != 0)
                return fail("bad literal");
            pos += 4;
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        // Number: delegate validation of the digits to strtod but
        // bound the token ourselves so trailing garbage is caught.
        const std::size_t start = pos;
        if (c == '-' || c == '+')
            ++pos;
        bool sawDigit = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(text[pos])))
                sawDigit = true;
            ++pos;
        }
        if (!sawDigit) {
            pos = start;
            return fail("expected value");
        }
        const std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0') {
            pos = start;
            return fail("bad number");
        }
        return true;
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberAt(const std::string &key, double def) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? v->number : def;
}

std::string
JsonValue::stringAt(const std::string &key) const
{
    const JsonValue *v = find(key);
    return (v && v->isString()) ? v->text : std::string();
}

bool
parseJson(const std::string &text, JsonValue &out,
          std::string &error)
{
    Parser p(text);
    out = JsonValue();
    if (!p.parseValue(out, 0)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = "trailing garbage at byte " + std::to_string(p.pos);
        return false;
    }
    return true;
}

bool
parseJsonFile(const std::string &path, JsonValue &out,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk) {
        error = "read error on " + path;
        return false;
    }
    return parseJson(text, out, error);
}

} // namespace obs

} // namespace tdfe
