#include "euler3d/sedov.hh"

#include <cmath>

#include "base/logging.hh"

namespace tdfe
{

namespace
{

/** Similarity constant for gamma = 1.4 (Sedov 1959, tabulated). */
constexpr double xi0 = 1.15;

} // namespace

void
applySedov(EulerSolver3D &solver, const SedovSetup &setup)
{
    solver.depositCornerEnergy(setup.energy);
}

double
sedovShockRadius(double energy, double rho0, double t)
{
    TDFE_ASSERT(energy > 0.0 && rho0 > 0.0, "bad Sedov parameters");
    return xi0 * std::pow(energy * t * t / rho0, 0.2);
}

double
sedovShockTime(double energy, double rho0, double radius)
{
    TDFE_ASSERT(energy > 0.0 && rho0 > 0.0 && radius > 0.0,
                "bad Sedov parameters");
    return std::sqrt(rho0 * std::pow(radius / xi0, 5.0) / energy);
}

} // namespace tdfe
