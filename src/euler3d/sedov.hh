/**
 * @file
 * Sedov-Taylor point-blast helpers: standard initial conditions for
 * the Euler solver plus the self-similar reference solution used by
 * property tests (shock radius r_s(t) = xi0 * (E t^2 / rho)^(1/5)).
 */

#ifndef TDFE_EULER3D_SEDOV_HH
#define TDFE_EULER3D_SEDOV_HH

#include "euler3d/solver.hh"

namespace tdfe
{

/** Parameters of a Sedov blast experiment. */
struct SedovSetup
{
    /** Total blast energy deposited at the corner (code units).
     *  Because the corner cell sits on three symmetry planes, this
     *  represents 1/8 of a full-space explosion. */
    double energy = 2.0;
};

/** Apply Sedov initial conditions to a freshly built solver. */
void applySedov(EulerSolver3D &solver, const SedovSetup &setup);

/**
 * Self-similar shock radius for a gamma = 1.4 point explosion:
 * r_s = xi0 (E t^2 / rho)^(1/5) with xi0 ~= 1.15.
 *
 * @param energy Full-space blast energy (8x the corner deposit).
 * @param rho0 Ambient density.
 * @param t Time since the explosion.
 */
double sedovShockRadius(double energy, double rho0, double t);

/** Invert sedovShockRadius: time when the shock reaches @p radius. */
double sedovShockTime(double energy, double rho0, double radius);

} // namespace tdfe

#endif // TDFE_EULER3D_SEDOV_HH
