#include "euler3d/solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/serial.hh"
#include "base/thread_pool.hh"
#include "hydro/flux.hh"
#include "par/comm.hh"

namespace tdfe
{

namespace
{

/** Split @p n cells across @p parts slabs; @return begin of @p r. */
int
slabBegin(int n, int parts, int r)
{
    return static_cast<int>(
        (static_cast<long>(n) * r) / parts);
}

/** Cells per chunk for flat loops (fixed: keeps reductions stable). */
constexpr std::size_t flatGrain = 8192;

} // namespace

EulerSolver3D::EulerSolver3D(const Euler3Config &config,
                             Communicator *comm)
    : cfg(config), comm(comm), eos_(config.gamma)
{
    TDFE_ASSERT(cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0,
                "grid extents must be positive");

    const int nranks = comm ? comm->size() : 1;
    const int rank = comm ? comm->rank() : 0;
    TDFE_ASSERT(nranks <= cfg.nz,
                "more ranks than z planes (", nranks, " > ", cfg.nz,
                ")");
    zBegin_ = slabBegin(cfg.nz, nranks, rank);
    zCount_ = slabBegin(cfg.nz, nranks, rank + 1) - zBegin_;

    px = cfg.nx + 2;
    py = cfg.ny + 2;
    pz = zCount_ + 2;
    const std::size_t n = static_cast<std::size_t>(px) * py * pz;

    // Background state everywhere, ghosts included, so corner ghost
    // cells never hold zero density.
    rho.assign(n, cfg.rho0);
    mx.assign(n, 0.0);
    my.assign(n, 0.0);
    mz.assign(n, 0.0);
    en.assign(n, cfg.rho0 * eos_.energy(cfg.rho0, cfg.p0));

    wr.assign(n, 0.0);
    wx.assign(n, 0.0);
    wy.assign(n, 0.0);
    wz.assign(n, 0.0);
    wp.assign(n, 0.0);
    wc.assign(n, 0.0);

    d_rho.assign(n, 0.0);
    d_mx.assign(n, 0.0);
    d_my.assign(n, 0.0);
    d_mz.assign(n, 0.0);
    d_en.assign(n, 0.0);
}

std::size_t
EulerSolver3D::id(int i, int j, int k) const
{
    return (static_cast<std::size_t>(k + 1) * py +
            static_cast<std::size_t>(j + 1)) * px +
           static_cast<std::size_t>(i + 1);
}

void
EulerSolver3D::depositCornerEnergy(double energy)
{
    TDFE_ASSERT(energy > 0.0, "blast energy must be positive");
    if (zBegin_ == 0) {
        const double volume = cfg.dx * cfg.dx * cfg.dx;
        en[id(0, 0, 0)] += energy / volume;
    }
}

void
EulerSolver3D::exchangeHalos()
{
    if (!comm || comm->size() == 1)
        return;

    const int rank = comm->rank();
    const int nranks = comm->size();
    const std::size_t plane =
        static_cast<std::size_t>(cfg.nx) * cfg.ny;

    double *const fields[5] = {rho.data(), mx.data(), my.data(),
                               mz.data(), en.data()};
    const std::size_t nx = static_cast<std::size_t>(cfg.nx);

    auto pack = [&](int k, std::vector<double> &buf) {
        buf.resize(plane * 5);
        for (int f = 0; f < 5; ++f) {
            double *__restrict dst = buf.data() + f * plane;
            for (int j = 0; j < cfg.ny; ++j) {
                const double *__restrict src =
                    fields[f] + id(0, j, k);
                for (std::size_t i = 0; i < nx; ++i)
                    dst[i] = src[i];
                dst += nx;
            }
        }
    };
    auto unpack = [&](int k, const std::vector<double> &buf) {
        TDFE_ASSERT(buf.size() == plane * 5, "halo size mismatch");
        for (int f = 0; f < 5; ++f) {
            const double *__restrict src = buf.data() + f * plane;
            for (int j = 0; j < cfg.ny; ++j) {
                double *__restrict dst = fields[f] + id(0, j, k);
                for (std::size_t i = 0; i < nx; ++i)
                    dst[i] = src[i];
                src += nx;
            }
        }
    };

    constexpr int tagUp = 100;
    constexpr int tagDown = 101;
    std::vector<double> buf;
    if (rank + 1 < nranks) {
        pack(zCount_ - 1, buf);
        comm->send(rank + 1, tagUp, buf);
    }
    if (rank > 0) {
        pack(0, buf);
        comm->send(rank - 1, tagDown, buf);
    }
    if (rank > 0)
        unpack(-1, comm->recv(rank - 1, tagUp));
    if (rank + 1 < nranks)
        unpack(zCount_, comm->recv(rank + 1, tagDown));
}

void
EulerSolver3D::fillGhosts()
{
    const std::size_t nx = static_cast<std::size_t>(cfg.nx);
    double *const fields[5] = {rho.data(), mx.data(), my.data(),
                               mz.data(), en.data()};

    // Copy @p n entries field-by-field from base+src to base+dst,
    // negating the field at @p flip (the reflective component).
    auto mirror_rows = [&](std::size_t dst, std::size_t src,
                           std::size_t n, int flip) {
        for (int f = 0; f < 5; ++f) {
            double *__restrict d = fields[f] + dst;
            const double *__restrict s = fields[f] + src;
            if (f == flip) {
                for (std::size_t i = 0; i < n; ++i)
                    d[i] = -s[i];
            } else {
                for (std::size_t i = 0; i < n; ++i)
                    d[i] = s[i];
            }
        }
    };

    // X faces: reflective at i=0 plane, outflow at i=nx. The ghost
    // column is strided (one cell per row), walked with the row
    // pitch hoisted out of id().
    for (int k = 0; k < zCount_; ++k) {
        for (int j = 0; j < cfg.ny; ++j) {
            const std::size_t lo_g = id(-1, j, k);
            const std::size_t hi_i = id(cfg.nx - 1, j, k);
            for (int f = 0; f < 5; ++f) {
                double *__restrict p = fields[f];
                p[lo_g] = f == 1 ? -p[lo_g + 1] : p[lo_g + 1];
                p[hi_i + 1] = p[hi_i];
            }
        }
    }
    // Y faces: whole x rows at a time (stride-1 copies).
    for (int k = 0; k < zCount_; ++k) {
        mirror_rows(id(0, -1, k), id(0, 0, k), nx, 2);
        mirror_rows(id(0, cfg.ny, k), id(0, cfg.ny - 1, k), nx, -1);
    }
    // Z faces: halo planes between ranks, physical boundaries at the
    // global ends — again stride-1 x rows.
    exchangeHalos();
    if (zBegin_ == 0) {
        for (int j = 0; j < cfg.ny; ++j)
            mirror_rows(id(0, j, -1), id(0, j, 0), nx, 3);
    }
    if (zBegin_ + zCount_ == cfg.nz) {
        for (int j = 0; j < cfg.ny; ++j)
            mirror_rows(id(0, j, zCount_), id(0, j, zCount_ - 1), nx,
                        -1);
    }
}

void
EulerSolver3D::computePrims()
{
    const double gm1 = cfg.gamma - 1.0;
    const std::size_t n = rho.size();
    parallelForRange(n, flatGrain, [&](std::size_t b,
                                       std::size_t e) {
        for (std::size_t c = b; c < e; ++c) {
            const double r = rho[c];
            const double inv = 1.0 / r;
            const double vx = mx[c] * inv;
            const double vy = my[c] * inv;
            const double vz = mz[c] * inv;
            const double kin =
                0.5 * (mx[c] * vx + my[c] * vy + mz[c] * vz);
            const double internal = en[c] - kin;
            wr[c] = r;
            wx[c] = vx;
            wy[c] = vy;
            wz[c] = vz;
            wp[c] = gm1 * std::max(internal, 1e-14);
            wc[c] = std::sqrt(cfg.gamma * wp[c] * inv);
        }
    });
}

double
EulerSolver3D::computeDt()
{
    computePrims();
    // Per-plane maxima combined by max: order-insensitive, so the
    // result is identical for any thread count.
    const double smax = parallelReduce(
        static_cast<std::size_t>(zCount_), std::size_t{1}, 1e-30,
        [&](std::size_t kb, std::size_t ke) {
            double best = 1e-30;
            for (std::size_t kk = kb; kk < ke; ++kk) {
                const int k = static_cast<int>(kk);
                for (int j = 0; j < cfg.ny; ++j) {
                    const std::size_t row = id(0, j, k);
                    for (int i = 0; i < cfg.nx; ++i) {
                        const std::size_t c = row + i;
                        const double s = std::max(
                            {std::abs(wx[c]), std::abs(wy[c]),
                             std::abs(wz[c])}) + wc[c];
                        best = std::max(best, s);
                    }
                }
            }
            return best;
        },
        [](double a, double b) { return std::max(a, b); });
    double dt = cfg.cfl * cfg.dx / smax;
    if (comm)
        dt = comm->allreduce(dt, ReduceOp::Min);
    if (lastDt > 0.0)
        dt = std::min(dt, lastDt * cfg.dtGrowth);
    lastDt = dt;
    return dt;
}

void
EulerSolver3D::step(double dt)
{
    fillGhosts();
    computePrims();

    std::fill(d_rho.begin(), d_rho.end(), 0.0);
    std::fill(d_mx.begin(), d_mx.end(), 0.0);
    std::fill(d_my.begin(), d_my.end(), 0.0);
    std::fill(d_mz.begin(), d_mz.end(), 0.0);
    std::fill(d_en.begin(), d_en.end(), 0.0);

    // Pointer-stride Rusanov sweeps over the SoA fields through the
    // shared row kernel (hydro/flux.cc rusanovFaceRow): each call
    // walks one row of faces with both cell streams stride-1. This
    // is the hot loop of the whole repository (see hydro/flux.hh for
    // the struct-returning reference the tests validate against).
    //
    // Each face writes to the cells on both its sides, so the
    // parallel unit must keep both endpoints inside one task: faces
    // along X stay within a (j, k) row, along Y within a k plane,
    // and along Z within a j row-of-planes. Within a task, faces
    // run in the same ascending order as the serial sweep, so the
    // per-cell accumulation order — and the result — is unchanged.
    auto face_row = [&](Axis3 axis, const double *wn,
                        std::size_t base, std::size_t n,
                        std::ptrdiff_t off) {
        rusanovFaceRow(n, off, axis, rho.data() + base,
                       mx.data() + base, my.data() + base,
                       mz.data() + base, en.data() + base, wn + base,
                       wp.data() + base, wc.data() + base,
                       d_rho.data() + base, d_mx.data() + base,
                       d_my.data() + base, d_mz.data() + base,
                       d_en.data() + base);
    };

    {
        // X: faces differ by one i; parallel over (k, j) rows.
        const std::size_t ni = static_cast<std::size_t>(cfg.nx) + 1;
        const std::size_t rows =
            static_cast<std::size_t>(zCount_) * cfg.ny;
        parallelFor(rows, std::size_t{8}, [&](std::size_t rj) {
            const int k = static_cast<int>(rj) / cfg.ny;
            const int j = static_cast<int>(rj) % cfg.ny;
            face_row(Axis3::X, wx.data(), id(0, j, k), ni,
                     std::ptrdiff_t{1});
        });
    }
    {
        // Y: faces differ by one j; parallel over k planes.
        const int nj = cfg.ny + 1;
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(px);
        parallelFor(static_cast<std::size_t>(zCount_),
                    std::size_t{1}, [&](std::size_t kk) {
                        const int k = static_cast<int>(kk);
                        for (int j = 0; j < nj; ++j)
                            face_row(Axis3::Y, wy.data(),
                                     id(0, j, k),
                                     static_cast<std::size_t>(
                                         cfg.nx),
                                     off);
                    });
    }
    {
        // Z: faces differ by one k; parallel over j rows-of-planes.
        const int nk = zCount_ + 1;
        const std::ptrdiff_t off =
            static_cast<std::ptrdiff_t>(px) * py;
        parallelFor(static_cast<std::size_t>(cfg.ny),
                    std::size_t{1}, [&](std::size_t jj) {
                        const int j = static_cast<int>(jj);
                        for (int k = 0; k < nk; ++k)
                            face_row(Axis3::Z, wz.data(),
                                     id(0, j, k),
                                     static_cast<std::size_t>(
                                         cfg.nx),
                                     off);
                    });
    }

    const double scale = dt / cfg.dx;
    parallelFor(
        static_cast<std::size_t>(zCount_), std::size_t{1},
        [&](std::size_t kk) {
            const int k = static_cast<int>(kk);
            const std::size_t nx = static_cast<std::size_t>(cfg.nx);
            for (int j = 0; j < cfg.ny; ++j) {
                const std::size_t row = id(0, j, k);
                double *__restrict r = rho.data() + row;
                double *__restrict px_ = mx.data() + row;
                double *__restrict py_ = my.data() + row;
                double *__restrict pz_ = mz.data() + row;
                double *__restrict e = en.data() + row;
                const double *__restrict dr = d_rho.data() + row;
                const double *__restrict dx_ = d_mx.data() + row;
                const double *__restrict dy_ = d_my.data() + row;
                const double *__restrict dz_ = d_mz.data() + row;
                const double *__restrict de = d_en.data() + row;
                for (std::size_t i = 0; i < nx; ++i) {
                    r[i] += scale * dr[i];
                    px_[i] += scale * dx_[i];
                    py_[i] += scale * dy_[i];
                    pz_[i] += scale * dz_[i];
                    e[i] += scale * de[i];
                    // Positivity floors (strong blasts on coarse
                    // grids).
                    if (r[i] < 1e-12)
                        r[i] = 1e-12;
                }
            }
        });

    t += dt;
    ++cycleCount;
}

double
EulerSolver3D::advance()
{
    const double dt = computeDt();
    step(dt);
    return dt;
}

double
EulerSolver3D::velocityMagnitude(int i, int j, int k) const
{
    TDFE_ASSERT(ownsZ(k), "cell not owned by this rank");
    const std::size_t c = id(i, j, k - zBegin_);
    const double inv = 1.0 / rho[c];
    const double vx = mx[c] * inv;
    const double vy = my[c] * inv;
    const double vz = mz[c] * inv;
    return std::sqrt(vx * vx + vy * vy + vz * vz);
}

Prim
EulerSolver3D::primAt(int i, int j, int k) const
{
    TDFE_ASSERT(ownsZ(k), "cell not owned by this rank");
    const std::size_t c = id(i, j, k - zBegin_);
    Cons u{rho[c], mx[c], my[c], mz[c], en[c]};
    return toPrim(u, eos_);
}

double
EulerSolver3D::totalMass() const
{
    double acc = 0.0;
    for (int k = 0; k < zCount_; ++k) {
        for (int j = 0; j < cfg.ny; ++j) {
            const double *__restrict row = rho.data() + id(0, j, k);
            for (int i = 0; i < cfg.nx; ++i)
                acc += row[i];
        }
    }
    return acc;
}

double
EulerSolver3D::totalEnergy() const
{
    double acc = 0.0;
    for (int k = 0; k < zCount_; ++k) {
        for (int j = 0; j < cfg.ny; ++j) {
            const double *__restrict row = en.data() + id(0, j, k);
            for (int i = 0; i < cfg.nx; ++i)
                acc += row[i];
        }
    }
    return acc;
}

void
EulerSolver3D::save(BinaryWriter &w) const
{
    w.writeTag("euler3d");
    w.writeVec(rho);
    w.writeVec(mx);
    w.writeVec(my);
    w.writeVec(mz);
    w.writeVec(en);
    w.writeF64(t);
    w.writeI64(cycleCount);
    // lastDt feeds the dtGrowth limiter: without it the first
    // resumed step could grow dt differently than the uninterrupted
    // run and break bitwise identity.
    w.writeF64(lastDt);
}

void
EulerSolver3D::load(BinaryReader &r)
{
    r.expectTag("euler3d");
    std::vector<double> *const fields[] = {&rho, &mx, &my, &mz, &en};
    for (std::vector<double> *field : fields) {
        std::vector<double> v = r.readVec();
        if (!r.ok())
            return;
        if (v.size() != field->size()) {
            TDFE_FATAL("euler3d checkpoint field has ", v.size(),
                       " cells, solver has ", field->size(),
                       " (different grid or decomposition?)");
        }
        *field = std::move(v);
    }
    t = r.readF64();
    cycleCount = static_cast<long>(r.readI64());
    lastDt = r.readF64();
}

} // namespace tdfe
