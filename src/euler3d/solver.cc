#include "euler3d/solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "hydro/flux.hh"
#include "par/comm.hh"

namespace tdfe
{

namespace
{

/** Split @p n cells across @p parts slabs; @return begin of @p r. */
int
slabBegin(int n, int parts, int r)
{
    return static_cast<int>(
        (static_cast<long>(n) * r) / parts);
}

/** Cells per chunk for flat loops (fixed: keeps reductions stable). */
constexpr std::size_t flatGrain = 8192;

} // namespace

EulerSolver3D::EulerSolver3D(const Euler3Config &config,
                             Communicator *comm)
    : cfg(config), comm(comm), eos_(config.gamma)
{
    TDFE_ASSERT(cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0,
                "grid extents must be positive");

    const int nranks = comm ? comm->size() : 1;
    const int rank = comm ? comm->rank() : 0;
    TDFE_ASSERT(nranks <= cfg.nz,
                "more ranks than z planes (", nranks, " > ", cfg.nz,
                ")");
    zBegin_ = slabBegin(cfg.nz, nranks, rank);
    zCount_ = slabBegin(cfg.nz, nranks, rank + 1) - zBegin_;

    px = cfg.nx + 2;
    py = cfg.ny + 2;
    pz = zCount_ + 2;
    const std::size_t n = static_cast<std::size_t>(px) * py * pz;

    // Background state everywhere, ghosts included, so corner ghost
    // cells never hold zero density.
    rho.assign(n, cfg.rho0);
    mx.assign(n, 0.0);
    my.assign(n, 0.0);
    mz.assign(n, 0.0);
    en.assign(n, cfg.rho0 * eos_.energy(cfg.rho0, cfg.p0));

    wr.assign(n, 0.0);
    wx.assign(n, 0.0);
    wy.assign(n, 0.0);
    wz.assign(n, 0.0);
    wp.assign(n, 0.0);
    wc.assign(n, 0.0);

    d_rho.assign(n, 0.0);
    d_mx.assign(n, 0.0);
    d_my.assign(n, 0.0);
    d_mz.assign(n, 0.0);
    d_en.assign(n, 0.0);
}

std::size_t
EulerSolver3D::id(int i, int j, int k) const
{
    return (static_cast<std::size_t>(k + 1) * py +
            static_cast<std::size_t>(j + 1)) * px +
           static_cast<std::size_t>(i + 1);
}

void
EulerSolver3D::depositCornerEnergy(double energy)
{
    TDFE_ASSERT(energy > 0.0, "blast energy must be positive");
    if (zBegin_ == 0) {
        const double volume = cfg.dx * cfg.dx * cfg.dx;
        en[id(0, 0, 0)] += energy / volume;
    }
}

void
EulerSolver3D::exchangeHalos()
{
    if (!comm || comm->size() == 1)
        return;

    const int rank = comm->rank();
    const int nranks = comm->size();
    const std::size_t plane =
        static_cast<std::size_t>(cfg.nx) * cfg.ny;

    auto pack = [&](int k, std::vector<double> &buf) {
        buf.resize(plane * 5);
        std::size_t o = 0;
        for (int j = 0; j < cfg.ny; ++j) {
            for (int i = 0; i < cfg.nx; ++i) {
                const std::size_t c = id(i, j, k);
                buf[o] = rho[c];
                buf[o + plane] = mx[c];
                buf[o + 2 * plane] = my[c];
                buf[o + 3 * plane] = mz[c];
                buf[o + 4 * plane] = en[c];
                ++o;
            }
        }
    };
    auto unpack = [&](int k, const std::vector<double> &buf) {
        TDFE_ASSERT(buf.size() == plane * 5, "halo size mismatch");
        std::size_t o = 0;
        for (int j = 0; j < cfg.ny; ++j) {
            for (int i = 0; i < cfg.nx; ++i) {
                const std::size_t c = id(i, j, k);
                rho[c] = buf[o];
                mx[c] = buf[o + plane];
                my[c] = buf[o + 2 * plane];
                mz[c] = buf[o + 3 * plane];
                en[c] = buf[o + 4 * plane];
                ++o;
            }
        }
    };

    constexpr int tagUp = 100;
    constexpr int tagDown = 101;
    std::vector<double> buf;
    if (rank + 1 < nranks) {
        pack(zCount_ - 1, buf);
        comm->send(rank + 1, tagUp, buf);
    }
    if (rank > 0) {
        pack(0, buf);
        comm->send(rank - 1, tagDown, buf);
    }
    if (rank > 0)
        unpack(-1, comm->recv(rank - 1, tagUp));
    if (rank + 1 < nranks)
        unpack(zCount_, comm->recv(rank + 1, tagDown));
}

void
EulerSolver3D::fillGhosts()
{
    // X faces: reflective at i=0 plane, outflow at i=nx.
    for (int k = 0; k < zCount_; ++k) {
        for (int j = 0; j < cfg.ny; ++j) {
            const std::size_t lo_g = id(-1, j, k);
            const std::size_t lo_i = id(0, j, k);
            rho[lo_g] = rho[lo_i];
            mx[lo_g] = -mx[lo_i];
            my[lo_g] = my[lo_i];
            mz[lo_g] = mz[lo_i];
            en[lo_g] = en[lo_i];

            const std::size_t hi_g = id(cfg.nx, j, k);
            const std::size_t hi_i = id(cfg.nx - 1, j, k);
            rho[hi_g] = rho[hi_i];
            mx[hi_g] = mx[hi_i];
            my[hi_g] = my[hi_i];
            mz[hi_g] = mz[hi_i];
            en[hi_g] = en[hi_i];
        }
    }
    // Y faces.
    for (int k = 0; k < zCount_; ++k) {
        for (int i = 0; i < cfg.nx; ++i) {
            const std::size_t lo_g = id(i, -1, k);
            const std::size_t lo_i = id(i, 0, k);
            rho[lo_g] = rho[lo_i];
            mx[lo_g] = mx[lo_i];
            my[lo_g] = -my[lo_i];
            mz[lo_g] = mz[lo_i];
            en[lo_g] = en[lo_i];

            const std::size_t hi_g = id(i, cfg.ny, k);
            const std::size_t hi_i = id(i, cfg.ny - 1, k);
            rho[hi_g] = rho[hi_i];
            mx[hi_g] = mx[hi_i];
            my[hi_g] = my[hi_i];
            mz[hi_g] = mz[hi_i];
            en[hi_g] = en[hi_i];
        }
    }
    // Z faces: halo planes between ranks, physical boundaries at the
    // global ends.
    exchangeHalos();
    if (zBegin_ == 0) {
        for (int j = 0; j < cfg.ny; ++j) {
            for (int i = 0; i < cfg.nx; ++i) {
                const std::size_t g = id(i, j, -1);
                const std::size_t c = id(i, j, 0);
                rho[g] = rho[c];
                mx[g] = mx[c];
                my[g] = my[c];
                mz[g] = -mz[c];
                en[g] = en[c];
            }
        }
    }
    if (zBegin_ + zCount_ == cfg.nz) {
        for (int j = 0; j < cfg.ny; ++j) {
            for (int i = 0; i < cfg.nx; ++i) {
                const std::size_t g = id(i, j, zCount_);
                const std::size_t c = id(i, j, zCount_ - 1);
                rho[g] = rho[c];
                mx[g] = mx[c];
                my[g] = my[c];
                mz[g] = mz[c];
                en[g] = en[c];
            }
        }
    }
}

void
EulerSolver3D::computePrims()
{
    const double gm1 = cfg.gamma - 1.0;
    const std::size_t n = rho.size();
    parallelForRange(n, flatGrain, [&](std::size_t b,
                                       std::size_t e) {
        for (std::size_t c = b; c < e; ++c) {
            const double r = rho[c];
            const double inv = 1.0 / r;
            const double vx = mx[c] * inv;
            const double vy = my[c] * inv;
            const double vz = mz[c] * inv;
            const double kin =
                0.5 * (mx[c] * vx + my[c] * vy + mz[c] * vz);
            const double internal = en[c] - kin;
            wr[c] = r;
            wx[c] = vx;
            wy[c] = vy;
            wz[c] = vz;
            wp[c] = gm1 * std::max(internal, 1e-14);
            wc[c] = std::sqrt(cfg.gamma * wp[c] * inv);
        }
    });
}

double
EulerSolver3D::computeDt()
{
    computePrims();
    // Per-plane maxima combined by max: order-insensitive, so the
    // result is identical for any thread count.
    const double smax = parallelReduce(
        static_cast<std::size_t>(zCount_), std::size_t{1}, 1e-30,
        [&](std::size_t kb, std::size_t ke) {
            double best = 1e-30;
            for (std::size_t kk = kb; kk < ke; ++kk) {
                const int k = static_cast<int>(kk);
                for (int j = 0; j < cfg.ny; ++j) {
                    const std::size_t row = id(0, j, k);
                    for (int i = 0; i < cfg.nx; ++i) {
                        const std::size_t c = row + i;
                        const double s = std::max(
                            {std::abs(wx[c]), std::abs(wy[c]),
                             std::abs(wz[c])}) + wc[c];
                        best = std::max(best, s);
                    }
                }
            }
            return best;
        },
        [](double a, double b) { return std::max(a, b); });
    double dt = cfg.cfl * cfg.dx / smax;
    if (comm)
        dt = comm->allreduce(dt, ReduceOp::Min);
    if (lastDt > 0.0)
        dt = std::min(dt, lastDt * cfg.dtGrowth);
    lastDt = dt;
    return dt;
}

void
EulerSolver3D::step(double dt)
{
    fillGhosts();
    computePrims();

    std::fill(d_rho.begin(), d_rho.end(), 0.0);
    std::fill(d_mx.begin(), d_mx.end(), 0.0);
    std::fill(d_my.begin(), d_my.end(), 0.0);
    std::fill(d_mz.begin(), d_mz.end(), 0.0);
    std::fill(d_en.begin(), d_en.end(), 0.0);

    // Scalar Rusanov sweep over the SoA fields. The normal velocity
    // array and the momentum delta receiving the pressure term are
    // selected per axis; everything else is axis-independent. This
    // is the hot loop of the whole repository, hence no Prim/Cons
    // temporaries (see hydro/flux.hh for the reference version the
    // tests validate against).
    //
    // Each face writes to the cells on both its sides, so the
    // parallel unit must keep both endpoints inside one task: faces
    // along X stay within a (j, k) row, along Y within a k plane,
    // and along Z within a j row-of-planes. Within a task, faces
    // run in the same ascending order as the serial sweep, so the
    // per-cell accumulation order — and the result — is unchanged.
    auto face = [&](Axis3 axis, const double *wn, std::size_t off,
                    std::size_t rc) {
        const std::size_t lc = rc - off;

        const double vn_l = wn[lc];
        const double vn_r = wn[rc];
        const double s_l = std::abs(vn_l) + wc[lc];
        const double s_r = std::abs(vn_r) + wc[rc];
        const double smax = std::max(s_l, s_r);

        const double f_rho =
            0.5 * (rho[lc] * vn_l + rho[rc] * vn_r) -
            0.5 * smax * (rho[rc] - rho[lc]);
        double f_mx =
            0.5 * (mx[lc] * vn_l + mx[rc] * vn_r) -
            0.5 * smax * (mx[rc] - mx[lc]);
        double f_my =
            0.5 * (my[lc] * vn_l + my[rc] * vn_r) -
            0.5 * smax * (my[rc] - my[lc]);
        double f_mz =
            0.5 * (mz[lc] * vn_l + mz[rc] * vn_r) -
            0.5 * smax * (mz[rc] - mz[lc]);
        const double f_en =
            0.5 * ((en[lc] + wp[lc]) * vn_l +
                   (en[rc] + wp[rc]) * vn_r) -
            0.5 * smax * (en[rc] - en[lc]);
        const double p_avg = 0.5 * (wp[lc] + wp[rc]);
        if (axis == Axis3::X)
            f_mx += p_avg;
        else if (axis == Axis3::Y)
            f_my += p_avg;
        else
            f_mz += p_avg;

        d_rho[lc] -= f_rho;
        d_mx[lc] -= f_mx;
        d_my[lc] -= f_my;
        d_mz[lc] -= f_mz;
        d_en[lc] -= f_en;
        d_rho[rc] += f_rho;
        d_mx[rc] += f_mx;
        d_my[rc] += f_my;
        d_mz[rc] += f_mz;
        d_en[rc] += f_en;
    };

    {
        // X: faces differ by one i; parallel over (k, j) rows.
        const int ni = cfg.nx + 1;
        const std::size_t off = id(1, 0, 0) - id(0, 0, 0);
        const std::size_t rows =
            static_cast<std::size_t>(zCount_) * cfg.ny;
        parallelFor(rows, std::size_t{8}, [&](std::size_t rj) {
            const int k = static_cast<int>(rj) / cfg.ny;
            const int j = static_cast<int>(rj) % cfg.ny;
            const std::size_t row = id(0, j, k);
            for (int i = 0; i < ni; ++i)
                face(Axis3::X, wx.data(), off, row + i);
        });
    }
    {
        // Y: faces differ by one j; parallel over k planes.
        const int nj = cfg.ny + 1;
        const std::size_t off = id(0, 1, 0) - id(0, 0, 0);
        parallelFor(static_cast<std::size_t>(zCount_),
                    std::size_t{1}, [&](std::size_t kk) {
                        const int k = static_cast<int>(kk);
                        for (int j = 0; j < nj; ++j) {
                            const std::size_t row = id(0, j, k);
                            for (int i = 0; i < cfg.nx; ++i)
                                face(Axis3::Y, wy.data(), off,
                                     row + i);
                        }
                    });
    }
    {
        // Z: faces differ by one k; parallel over j rows-of-planes.
        const int nk = zCount_ + 1;
        const std::size_t off = id(0, 0, 1) - id(0, 0, 0);
        parallelFor(static_cast<std::size_t>(cfg.ny),
                    std::size_t{1}, [&](std::size_t jj) {
                        const int j = static_cast<int>(jj);
                        for (int k = 0; k < nk; ++k) {
                            const std::size_t row = id(0, j, k);
                            for (int i = 0; i < cfg.nx; ++i)
                                face(Axis3::Z, wz.data(), off,
                                     row + i);
                        }
                    });
    }

    const double scale = dt / cfg.dx;
    parallelFor(static_cast<std::size_t>(zCount_), std::size_t{1},
                [&](std::size_t kk) {
                    const int k = static_cast<int>(kk);
                    for (int j = 0; j < cfg.ny; ++j) {
                        const std::size_t row = id(0, j, k);
                        for (int i = 0; i < cfg.nx; ++i) {
                            const std::size_t c = row + i;
                            rho[c] += scale * d_rho[c];
                            mx[c] += scale * d_mx[c];
                            my[c] += scale * d_my[c];
                            mz[c] += scale * d_mz[c];
                            en[c] += scale * d_en[c];
                            // Positivity floors (strong blasts on
                            // coarse grids).
                            if (rho[c] < 1e-12)
                                rho[c] = 1e-12;
                        }
                    }
                });

    t += dt;
    ++cycleCount;
}

double
EulerSolver3D::advance()
{
    const double dt = computeDt();
    step(dt);
    return dt;
}

double
EulerSolver3D::velocityMagnitude(int i, int j, int k) const
{
    TDFE_ASSERT(ownsZ(k), "cell not owned by this rank");
    const std::size_t c = id(i, j, k - zBegin_);
    const double inv = 1.0 / rho[c];
    const double vx = mx[c] * inv;
    const double vy = my[c] * inv;
    const double vz = mz[c] * inv;
    return std::sqrt(vx * vx + vy * vy + vz * vz);
}

Prim
EulerSolver3D::primAt(int i, int j, int k) const
{
    TDFE_ASSERT(ownsZ(k), "cell not owned by this rank");
    const std::size_t c = id(i, j, k - zBegin_);
    Cons u{rho[c], mx[c], my[c], mz[c], en[c]};
    return toPrim(u, eos_);
}

double
EulerSolver3D::totalMass() const
{
    double acc = 0.0;
    for (int k = 0; k < zCount_; ++k)
        for (int j = 0; j < cfg.ny; ++j)
            for (int i = 0; i < cfg.nx; ++i)
                acc += rho[id(i, j, k)];
    return acc;
}

double
EulerSolver3D::totalEnergy() const
{
    double acc = 0.0;
    for (int k = 0; k < zCount_; ++k)
        for (int j = 0; j < cfg.ny; ++j)
            for (int i = 0; i < cfg.nx; ++i)
                acc += en[id(i, j, k)];
    return acc;
}

} // namespace tdfe
