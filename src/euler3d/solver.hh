/**
 * @file
 * 3D finite-volume compressible Euler solver on a uniform Cartesian
 * grid: first-order Godunov with Rusanov fluxes, reflective low
 * boundaries (blast-symmetry planes) and outflow high boundaries.
 *
 * This is the repository's stand-in for LULESH: it runs the same
 * corner-deposited Sedov blast on an N^3 domain and exposes the same
 * iterate-until-done driver shape. Optional slab decomposition along
 * z across Communicator ranks exchanges one ghost plane per side per
 * step, mirroring an MPI-parallel hydro mini-app.
 */

#ifndef TDFE_EULER3D_SOLVER_HH
#define TDFE_EULER3D_SOLVER_HH

#include <cstddef>
#include <vector>

#include "hydro/eos.hh"
#include "hydro/state.hh"

namespace tdfe
{

class BinaryReader;
class BinaryWriter;
class Communicator;

/** Configuration of a blast-capable Euler run. */
struct Euler3Config
{
    /** Global cells per axis. */
    int nx = 30;
    int ny = 30;
    int nz = 30;
    /** Cell width (uniform). */
    double dx = 1.0;
    /** Adiabatic index. */
    double gamma = 1.4;
    /** CFL number. */
    double cfl = 0.25;
    /** Background density. */
    double rho0 = 1.0;
    /** Background pressure (small, cold ambient). */
    double p0 = 1e-6;
    /** Maximum per-step growth of dt (LULESH-style limiter). */
    double dtGrowth = 1.03;
};

/**
 * The solver. With a communicator of R ranks, the z extent is split
 * into near-equal slabs; rank r owns z planes [zBegin, zBegin+zCount).
 */
class EulerSolver3D
{
  public:
    /**
     * @param config Run configuration.
     * @param comm Optional communicator for slab decomposition
     *        (nullptr: single rank owns the whole domain).
     */
    explicit EulerSolver3D(const Euler3Config &config,
                           Communicator *comm = nullptr);

    /**
     * Deposit @p energy (total, in code units) as internal energy in
     * the corner cell (0,0,0) — the 1/8-symmetric Sedov setup.
     */
    void depositCornerEnergy(double energy);

    /** Compute the stable timestep (collective across ranks). */
    double computeDt();

    /** Advance one step of size @p dt (exchanges halos first). */
    void step(double dt);

    /** Convenience: computeDt + step; @return the dt used. */
    double advance();

    /** @return accumulated simulation time. */
    double time() const { return t; }

    /** @return completed steps. */
    long cycle() const { return cycleCount; }

    /** @return true if this rank owns global z index @p k. */
    bool ownsZ(int k) const { return k >= zBegin_ && k < zBegin_ + zCount_; }

    /** First owned global z plane. */
    int zBegin() const { return zBegin_; }

    /** Number of owned z planes. */
    int zCount() const { return zCount_; }

    /**
     * Velocity magnitude of the cell at global (i, j, k); the cell
     * must be owned by this rank (see ownsZ).
     */
    double velocityMagnitude(int i, int j, int k) const;

    /** Primitive state of an owned cell (tests/diagnostics). */
    Prim primAt(int i, int j, int k) const;

    /** Locally-owned total mass (multiply by dx^3 for absolute). */
    double totalMass() const;

    /** Locally-owned total energy density sum. */
    double totalEnergy() const;

    /** @return the configuration. */
    const Euler3Config &config() const { return cfg; }

    /** @return the EOS in use. */
    const IdealGasEos &eos() const { return eos_; }

    /**
     * Checkpoint the mutable hydro state: conserved fields (with
     * ghosts), time, cycle count, and the dt-growth limiter's last
     * dt. Configuration and decomposition are not saved —
     * reconstruct with the same config/comm, then load(); primitive
     * scratch is recomputed on the next step. A field-size mismatch
     * through a healthy reader (different grid) is fatal; stream
     * damage latches on the reader instead. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

  private:
    std::size_t id(int i, int j, int k) const;
    void fillGhosts();
    void exchangeHalos();
    void computePrims();

    Euler3Config cfg;
    Communicator *comm;
    IdealGasEos eos_;

    int zBegin_ = 0;
    int zCount_ = 0;
    /** Padded local extents (+2 ghosts per axis). */
    int px = 0;
    int py = 0;
    int pz = 0;

    /** Conserved fields, SoA with one ghost layer. */
    std::vector<double> rho, mx, my, mz, en;
    /** Primitive scratch, same layout (wc = sound speed). */
    std::vector<double> wr, wx, wy, wz, wp, wc;
    /** Flux-difference accumulators (interior only usage). */
    std::vector<double> d_rho, d_mx, d_my, d_mz, d_en;

    double t = 0.0;
    long cycleCount = 0;
    double lastDt = 0.0;
};

} // namespace tdfe

#endif // TDFE_EULER3D_SOLVER_HH
