/**
 * @file
 * Crash-safe checkpoint envelope + rotation. Checkpoints are the
 * restart data of a long campaign, so unlike the feature store they
 * default to the paranoid end of the durability scale, and every
 * write is atomic: the envelope is assembled in memory, written to
 * `<path>.tmp` through the PR-6 StoreFile seam (so the same
 * deterministic FaultyFile faults the store sweep uses apply here),
 * made durable per policy, and renamed into place. A crash at any
 * byte leaves either the previous generation intact or a torn file
 * that fails its CRC and is skipped by openNewestValid().
 *
 * Envelope layout (little-endian, see base/portable.hh):
 *
 *     offset  0  magic[8]       "TDCKENV1"
 *     offset  8  u32 version    envelope format (currently 1)
 *     offset 12  u32 reserved   zero
 *     offset 16  u64 iteration  simulation iteration of the payload
 *     offset 24  u64 payload bytes
 *     offset 32  u32 header CRC-32 (of bytes [0, 32))
 *     offset 36  payload
 *     offset 36+n u32 payload CRC-32
 *
 * Error model mirrors the store sink: nothing in here ever fatals on
 * I/O. Saves that fail latch a sticky degraded status on the
 * CheckpointSet (the run continues, the harness surfaces it), and
 * loads that find damage fall back to the previous good generation.
 */

#ifndef TDFE_CKPT_CHECKPOINT_HH
#define TDFE_CKPT_CHECKPOINT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "store/file.hh"

namespace tdfe
{

namespace ckpt
{

/** Outcome of a checkpoint I/O operation; default means success. */
struct CkptStatus
{
    /** errno-style code; 0 means the operation succeeded. */
    int code = 0;
    /** Human-readable detail of the first failure. */
    std::string message;

    bool ok() const { return code == 0; }
};

/**
 * Per-write knobs. The fault hooks exist for the crash-point sweep:
 * wrapFile decorates the temp file (FaultyFile tears the write at an
 * exact byte), skipRename models dying after the durable write but
 * before the publish rename.
 */
struct WriteOptions
{
    /** When the envelope becomes durable before the rename. */
    store::DurabilityPolicy durability =
        store::DurabilityPolicy::SyncPerSeal;
    /** Test seam: decorate the temp file before writing. */
    std::function<std::unique_ptr<store::StoreFile>(
        std::unique_ptr<store::StoreFile>)>
        wrapFile;
    /** Test seam: crash before the tmp -> final rename. */
    bool skipRename = false;
};

/**
 * Write @p payload as a complete envelope at @p path, atomically
 * (tmp + durability + rename). Never fatals; a failure removes the
 * temp file and leaves whatever was at @p path untouched.
 */
CkptStatus writeCheckpointFile(const std::string &path,
                               const std::string &payload,
                               std::uint64_t iteration,
                               const WriteOptions &opts = {});

/**
 * Read and fully validate an envelope. @return true with the payload
 * and iteration filled in; false with @p error describing the first
 * problem (missing, truncated, bad magic/version/CRC).
 */
bool readCheckpointFile(const std::string &path, std::string *payload,
                        std::uint64_t *iteration,
                        std::string *error = nullptr);

/** Parsed envelope header + validity verdict (tdfstool ckpt-info). */
struct EnvelopeInfo
{
    bool valid = false;
    std::string error;
    std::uint32_t version = 0;
    std::uint64_t iteration = 0;
    std::uint64_t payloadBytes = 0;
    std::uint32_t payloadCrc = 0;
    std::uint64_t fileBytes = 0;
};

/** Inspect without keeping the payload (full CRC check still runs). */
EnvelopeInfo inspectCheckpointFile(const std::string &path);

/** One on-disk generation discovered by a prefix scan. */
struct Generation
{
    std::uint64_t iteration = 0;
    std::string path;
};

/** All `<prefix>.NNNNNN.tdck` generations, newest first. */
std::vector<Generation> listGenerations(const std::string &prefix);

/** @return `<prefix>.NNNNNN.tdck` for @p iteration. */
std::string generationPath(const std::string &prefix,
                           std::uint64_t iteration);

/**
 * Rotating set of checkpoint generations under one path prefix,
 * plus a human-readable `<prefix>.manifest` rewritten (atomically)
 * after every save. The directory scan — not the manifest — is
 * authoritative on load, so a crash between rename and manifest
 * update costs nothing.
 */
class CheckpointSet
{
  public:
    /**
     * @param prefix Path prefix; generations land next to it.
     * @param keep Generations retained (older ones are deleted
     *   after a successful save). Keep >= 2 so a torn newest
     *   generation still has a fallback; values < 1 clamp to 1.
     * @param durability When a generation becomes durable.
     */
    explicit CheckpointSet(std::string prefix, int keep = 3,
                           store::DurabilityPolicy durability =
                               store::DurabilityPolicy::SyncPerSeal);

    /**
     * Write one generation for @p iteration. @return false when the
     * write failed; the failure also latches degraded()/status()
     * (sticky), and the previous generations stay untouched.
     */
    bool save(std::uint64_t iteration, const std::string &payload);

    /**
     * Scan generations newest-first, fully validating each, and
     * return the newest valid payload. Torn or corrupt candidates
     * are skipped (that is the fallback-to-previous-good path).
     * @return false when no valid generation exists.
     */
    bool openNewestValid(std::string *payload,
                         std::uint64_t *iteration,
                         std::string *path = nullptr) const;

    /** @return true once any save has failed (sticky). */
    bool degraded() const { return degraded_; }

    /** First failure's status (empty while healthy). */
    const CkptStatus &status() const { return status_; }

    /** Generations written successfully through this set. */
    std::uint64_t saved() const { return saved_; }

    const std::string &prefix() const { return prefix_; }

    /**
     * Test seam: called before every save with the iteration and the
     * WriteOptions about to be used; the crash-point sweep injects
     * FaultyFile plans / skipRename for chosen generations here.
     */
    void
    setWriteHook(
        std::function<void(std::uint64_t, WriteOptions &)> hook)
    {
        writeHook_ = std::move(hook);
    }

  private:
    void rewriteManifest() const;
    void pruneOld() const;

    std::string prefix_;
    int keep_;
    store::DurabilityPolicy durability_;
    std::function<void(std::uint64_t, WriteOptions &)> writeHook_;
    bool degraded_ = false;
    /** warnOnce latch for the degrade warning (base/logging). */
    std::atomic<bool> warned_{false};
    CkptStatus status_;
    std::uint64_t saved_ = 0;
};

/**
 * Process-wide SIGINT/SIGTERM sentinel for the resilient runners:
 * the handler only sets a flag; the run loop polls it and performs
 * an orderly final checkpoint + store seal. @{
 */
void installSignalSentinel();
bool interruptRequested();
void clearInterruptRequest();
/** Test seam: simulate a delivered signal. */
void requestInterrupt();
/** @} */

} // namespace ckpt

} // namespace tdfe

#endif // TDFE_CKPT_CHECKPOINT_HH
