#include "ckpt/checkpoint.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/portable.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/codec.hh"

namespace tdfe
{

namespace ckpt
{

namespace
{

constexpr char envelopeMagic[8] = {'T', 'D', 'C', 'K',
                                   'E', 'N', 'V', '1'};
constexpr std::uint32_t envelopeVersion = 1;
constexpr std::size_t headerBytes = 36; // magic..headerCrc inclusive
constexpr std::size_t trailerBytes = 4; // payload CRC
constexpr char generationSuffix[] = ".tdck";

void
appendU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, sizeof(v));
    out.append(b, sizeof(b));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, sizeof(v));
    out.append(b, sizeof(b));
}

std::uint32_t
loadU32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
loadU64(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Split @p prefix into (directory, basename) for the scan. */
void
splitPrefix(const std::string &prefix, std::string *dir,
            std::string *base)
{
    const std::size_t slash = prefix.find_last_of('/');
    if (slash == std::string::npos) {
        *dir = ".";
        *base = prefix;
    } else {
        *dir = prefix.substr(0, slash == 0 ? 1 : slash);
        *base = prefix.substr(slash + 1);
    }
}

/** Read a whole file into @p out. @return false when unreadable. */
bool
slurp(const std::string &path, std::string *out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    out->resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (!out->empty())
        in.read(&(*out)[0],
                static_cast<std::streamsize>(out->size()));
    if (in.gcount() != static_cast<std::streamsize>(out->size())) {
        if (error)
            *error = "short read of '" + path + "'";
        return false;
    }
    return true;
}

/**
 * Parse + validate an envelope held in memory. Fills @p info with
 * everything parseable even when invalid.
 */
void
parseEnvelope(const std::string &bytes, EnvelopeInfo *info,
              std::string *payload)
{
    info->fileBytes = bytes.size();
    if (bytes.size() < headerBytes + trailerBytes) {
        info->error = "file too small for a checkpoint envelope (" +
                      std::to_string(bytes.size()) + " bytes)";
        return;
    }
    if (std::memcmp(bytes.data(), envelopeMagic,
                    sizeof(envelopeMagic)) != 0) {
        info->error = "bad magic (not a checkpoint envelope)";
        return;
    }
    info->version = loadU32(bytes.data() + 8);
    info->iteration = loadU64(bytes.data() + 16);
    info->payloadBytes = loadU64(bytes.data() + 24);
    const std::uint32_t header_crc = loadU32(bytes.data() + 32);
    const std::uint32_t header_crc_want =
        store::crc32(bytes.data(), 32);
    if (header_crc != header_crc_want) {
        info->error = "header CRC mismatch (torn or corrupt header)";
        return;
    }
    if (info->version != envelopeVersion) {
        info->error = "unsupported envelope version " +
                      std::to_string(info->version);
        return;
    }
    if (bytes.size() !=
        headerBytes + info->payloadBytes + trailerBytes) {
        info->error =
            "size mismatch: header promises " +
            std::to_string(info->payloadBytes) + " payload bytes, " +
            "file has " +
            std::to_string(bytes.size() - headerBytes -
                           trailerBytes) +
            " (torn write)";
        return;
    }
    const char *body = bytes.data() + headerBytes;
    info->payloadCrc =
        loadU32(body + info->payloadBytes);
    const std::uint32_t payload_crc_want =
        store::crc32(body, static_cast<std::size_t>(
                               info->payloadBytes));
    if (info->payloadCrc != payload_crc_want) {
        info->error = "payload CRC mismatch (corrupt payload)";
        return;
    }
    info->valid = true;
    if (payload)
        payload->assign(body, static_cast<std::size_t>(
                                  info->payloadBytes));
}

/** Best-effort fsync of the directory holding @p path so the rename
 *  itself survives node loss (matters only under SyncPerSeal). */
void
syncParentDir(const std::string &path)
{
    std::string dir, base;
    splitPrefix(path, &dir, &base);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

volatile std::sig_atomic_t interruptFlag = 0;

extern "C" void
sentinelHandler(int)
{
    interruptFlag = 1;
}

} // namespace

CkptStatus
writeCheckpointFile(const std::string &path,
                    const std::string &payload,
                    std::uint64_t iteration, const WriteOptions &opts)
{
    // Assemble the whole envelope first so the file sees exactly one
    // write call — an injected crash-at-byte-N then tears the file at
    // precisely that offset, independent of buffering.
    std::string env;
    env.reserve(headerBytes + payload.size() + trailerBytes);
    env.append(envelopeMagic, sizeof(envelopeMagic));
    appendU32(env, envelopeVersion);
    appendU32(env, 0); // reserved
    appendU64(env, iteration);
    appendU64(env, payload.size());
    appendU32(env, store::crc32(env.data(), 32));
    env.append(payload);
    appendU32(env, store::crc32(payload.data(), payload.size()));

    const std::string tmp = path + ".tmp";
    store::IoError err;
    std::unique_ptr<store::StoreFile> file =
        store::openOsFile(tmp, &err);
    if (!file) {
        return {err.code != 0 ? err.code : EIO,
                "cannot open '" + tmp + "': " + err.message};
    }
    if (opts.wrapFile)
        file = opts.wrapFile(std::move(file));

    CkptStatus bad;
    err = file->write(env.data(), env.size());
    if (!err.ok()) {
        bad = {err.code, "write to '" + tmp + "' failed: " +
                             err.message};
    }
    if (bad.ok()) {
        switch (opts.durability) {
          case store::DurabilityPolicy::None:
            break;
          case store::DurabilityPolicy::FlushPerSeal:
            err = file->flush();
            break;
          case store::DurabilityPolicy::SyncPerSeal:
            err = file->sync();
            break;
        }
        if (!err.ok())
            bad = {err.code, "durability on '" + tmp +
                                 "' failed: " + err.message};
    }
    err = file->close();
    if (bad.ok() && !err.ok())
        bad = {err.code, "close of '" + tmp + "' failed: " +
                             err.message};
    if (!bad.ok()) {
        std::remove(tmp.c_str());
        return bad;
    }
    if (opts.skipRename) {
        // Injected crash-before-publish: the durable tmp file is
        // abandoned exactly as a real crash would leave it.
        return {};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int e = errno;
        std::remove(tmp.c_str());
        return {e != 0 ? e : EIO, "rename '" + tmp + "' -> '" + path +
                                      "' failed"};
    }
    if (opts.durability == store::DurabilityPolicy::SyncPerSeal)
        syncParentDir(path);
    return {};
}

bool
readCheckpointFile(const std::string &path, std::string *payload,
                   std::uint64_t *iteration, std::string *error)
{
    std::string bytes;
    std::string slurp_error;
    if (!slurp(path, &bytes, &slurp_error)) {
        if (error)
            *error = slurp_error;
        return false;
    }
    EnvelopeInfo info;
    parseEnvelope(bytes, &info, payload);
    if (!info.valid) {
        if (error)
            *error = info.error;
        return false;
    }
    if (iteration)
        *iteration = info.iteration;
    return true;
}

EnvelopeInfo
inspectCheckpointFile(const std::string &path)
{
    EnvelopeInfo info;
    std::string bytes;
    if (!slurp(path, &bytes, &info.error))
        return info;
    parseEnvelope(bytes, &info, nullptr);
    return info;
}

std::string
generationPath(const std::string &prefix, std::uint64_t iteration)
{
    char num[32];
    std::snprintf(num, sizeof(num), "%06llu",
                  static_cast<unsigned long long>(iteration));
    return prefix + "." + num + generationSuffix;
}

std::vector<Generation>
listGenerations(const std::string &prefix)
{
    std::string dir, base;
    splitPrefix(prefix, &dir, &base);
    std::vector<Generation> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    const std::string head = base + ".";
    const std::string tail = generationSuffix;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= head.size() + tail.size())
            continue;
        if (name.compare(0, head.size(), head) != 0)
            continue;
        if (name.compare(name.size() - tail.size(), tail.size(),
                         tail) != 0)
            continue;
        const std::string digits = name.substr(
            head.size(), name.size() - head.size() - tail.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            continue;
        Generation g;
        g.iteration = std::strtoull(digits.c_str(), nullptr, 10);
        g.path = (dir == "." && prefix.find('/') == std::string::npos)
                     ? name
                     : dir + "/" + name;
        out.push_back(std::move(g));
    }
    ::closedir(d);
    std::sort(out.begin(), out.end(),
              [](const Generation &a, const Generation &b) {
                  return a.iteration > b.iteration;
              });
    return out;
}

CheckpointSet::CheckpointSet(std::string prefix, int keep,
                             store::DurabilityPolicy durability)
    : prefix_(std::move(prefix)), keep_(std::max(keep, 1)),
      durability_(durability)
{
}

bool
CheckpointSet::save(std::uint64_t iteration,
                    const std::string &payload)
{
    obs::SpanTimer span("ckpt.save", "ckpt");
    WriteOptions opts;
    opts.durability = durability_;
    if (writeHook_)
        writeHook_(iteration, opts);
    const std::string path = generationPath(prefix_, iteration);
    const CkptStatus st =
        writeCheckpointFile(path, payload, iteration, opts);
    if (!st.ok()) {
        // Sticky, like the store sink: the run continues, the
        // harness reports the first failure. Later saves still try —
        // a transient full scratch may drain.
        if (!degraded_) {
            degraded_ = true;
            status_ = st;
        }
        warnOnce(warned_, "ckpt",
                 detail::concatMessage(
                     "checkpoint set '", prefix_,
                     "' degraded (the run continues): ",
                     st.message));
        return false;
    }
    ++saved_;
    static obs::Counter writes("ckpt.writes_total");
    writes.add();
    static obs::Counter bytes("ckpt.bytes_written_total");
    bytes.add(payload.size());
    pruneOld();
    rewriteManifest();
    return true;
}

bool
CheckpointSet::openNewestValid(std::string *payload,
                               std::uint64_t *iteration,
                               std::string *path) const
{
    for (const Generation &g : listGenerations(prefix_)) {
        std::string error;
        if (readCheckpointFile(g.path, payload, iteration, &error)) {
            if (path)
                *path = g.path;
            return true;
        }
    }
    return false;
}

void
CheckpointSet::pruneOld() const
{
    const std::vector<Generation> gens = listGenerations(prefix_);
    for (std::size_t i = static_cast<std::size_t>(keep_);
         i < gens.size(); ++i)
        std::remove(gens[i].path.c_str());
}

void
CheckpointSet::rewriteManifest() const
{
    // Advisory (the load-time directory scan is authoritative):
    // a human-readable index for post-mortem triage, atomically
    // replaced so it never shows a torn state itself.
    const std::string path = prefix_ + ".manifest";
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << "# tdfe checkpoint manifest (newest first)\n";
        for (const Generation &g : listGenerations(prefix_))
            out << g.iteration << " " << g.path << "\n";
        if (!out.good())
            return;
    }
    std::rename(tmp.c_str(), path.c_str());
}

void
installSignalSentinel()
{
    std::signal(SIGINT, sentinelHandler);
    std::signal(SIGTERM, sentinelHandler);
}

bool
interruptRequested()
{
    return interruptFlag != 0;
}

void
clearInterruptRequest()
{
    interruptFlag = 0;
}

void
requestInterrupt()
{
    interruptFlag = 1;
}

} // namespace ckpt

} // namespace tdfe
