/**
 * @file
 * LULESH-shaped application wrapper around the 3D Euler blast
 * solver. The paper instruments LULESH as:
 *
 *   while (...) {
 *       td_region_begin(region);
 *       TimeIncrement(*locDom);      // time-step update
 *       LagrangeLeapFrog(*locDom);   // main computation
 *       td_region_end(region);
 *   }
 *
 * with a provider reading `locDom->xd(loc)`. This module offers the
 * identical surface: a Domain with xd(), and free functions
 * TimeIncrement / LagrangeLeapFrog, so the paper's integration code
 * compiles against this repository nearly verbatim.
 *
 * The probe line runs along the z axis away from the blast corner;
 * location l (1-based) is cell (0, 0, l-1). Under slab decomposition
 * each rank owns a segment of the line, and gatherProbes() merges it
 * across ranks every iteration.
 */

#ifndef TDFE_BLASTAPP_DOMAIN_HH
#define TDFE_BLASTAPP_DOMAIN_HH

#include <memory>
#include <vector>

#include "euler3d/sedov.hh"
#include "euler3d/solver.hh"

namespace tdfe
{

class BinaryReader;
class BinaryWriter;
class Communicator;

namespace blast
{

/** Configuration of a material-deformation (blast) experiment. */
struct BlastConfig
{
    /** Cube edge in cells (the paper's domain sizes 30/60/90). */
    int size = 30;
    /** Blast energy deposited at the corner. */
    double sedovEnergy = 2.0;
    /** Run until the shock would reach this fraction of the edge. */
    double tEndFactor = 0.9;
    /** Optional hard iteration cap (0 = none). */
    long maxIterations = 0;
    /** CFL number for the Euler solver. */
    double cfl = 0.25;
};

/**
 * The simulation domain: solver + probe line + bookkeeping. Mirrors
 * the role of LULESH's Domain object.
 */
class Domain
{
  public:
    /**
     * @param config Experiment parameters.
     * @param comm Optional communicator (slab decomposition).
     */
    explicit Domain(const BlastConfig &config,
                    Communicator *comm = nullptr);

    /**
     * Probe accessor used by the td provider: |velocity| at probe
     * location @p loc in [1, size]. Valid after the first
     * gatherProbes().
     */
    double xd(long loc) const;

    /** @return current deltatime (set by TimeIncrement). */
    double deltatime() const { return dt; }

    /** @return simulation time. */
    double time() const { return solver_.time(); }

    /** @return completed iterations. */
    long cycle() const { return solver_.cycle(); }

    /** @return true once time() has reached the configured end. */
    bool finished() const;

    /** @return the end time of the experiment. */
    double tEnd() const { return tEnd_; }

    /**
     * Merge the probe line across ranks (allreduce-sum of owner
     * contributions) and refresh the running initial-velocity peak.
     * Call once per iteration after LagrangeLeapFrog.
     */
    void gatherProbes();

    /**
     * "Velocity initiated by the blast": running maximum of the
     * probe at location 1, the reference for threshold percentages.
     */
    double initialVelocity() const { return vInit; }

    /** @return rank owning probe location @p loc. */
    int rankOfLocation(long loc) const;

    /** @return probe line length (== size). */
    long probeCount() const
    {
        return static_cast<long>(probeLine.size());
    }

    /** @return the latest gathered probe line (index 0 = loc 1). */
    const std::vector<double> &probes() const { return probeLine; }

    /** @return the underlying solver (tests/diagnostics). */
    EulerSolver3D &solver() { return solver_; }
    const EulerSolver3D &solver() const { return solver_; }

    /** @return the communicator (may be nullptr). */
    Communicator *comm() const { return comm_; }

    /**
     * Checkpoint the domain's mutable state (dt, probe line,
     * initial-velocity peak, solver state). Reconstruct with the
     * same config/comm first; load() resumes bitwise-exactly. @{ */
    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
    /** @} */

    /** Friends implementing the LULESH-shaped driver API. @{ */
    friend void TimeIncrement(Domain &domain);
    friend void LagrangeLeapFrog(Domain &domain);
    /** @} */

  private:
    BlastConfig cfg;
    Communicator *comm_;
    EulerSolver3D solver_;
    double tEnd_;
    double dt = 0.0;
    std::vector<double> probeLine;
    std::vector<double> probeScratch;
    double vInit = 0.0;
};

/** Compute the next timestep (collective), as in LULESH. */
void TimeIncrement(Domain &domain);

/** Advance the hydro state by the current deltatime. */
void LagrangeLeapFrog(Domain &domain);

} // namespace blast

} // namespace tdfe

#endif // TDFE_BLASTAPP_DOMAIN_HH
