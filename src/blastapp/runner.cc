#include "blastapp/runner.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "base/logging.hh"
#include "base/serial.hh"
#include "base/timer.hh"
#include "ckpt/checkpoint.hh"
#include "core/region.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "par/store_merge.hh"

namespace tdfe
{

namespace blast
{

namespace
{

/** Writer knobs from the run flags — one builder so the per-rank
 *  parts, the rank-0 merge, and the crash-resume stitch all honor
 *  the same --store-async / --store-durability settings. */
StoreOptions
storeOptionsFrom(const RunOptions &options)
{
    StoreOptions store_options;
    store_options.async = options.storeAsync;
    store_options.durability =
        store::parseDurabilityPolicy(options.storeDurability);
    store_options.live = options.storeLive;
    return store_options;
}

/**
 * Combined resume payload: the domain's hydro state plus (when
 * instrumented) the region's analysis/protocol state, in one byte
 * string the envelope frames with CRCs. The tag/version lets a
 * future layout change coexist with old checkpoints on disk.
 */
std::string
buildResumePayload(const Domain &domain, const Region *region)
{
    std::ostringstream os(std::ios::binary);
    BinaryWriter w(os);
    w.writeTag("TDRESUME");
    w.writeU64(1); // payload format version
    w.writeBool(region != nullptr);
    domain.save(w);
    if (region)
        region->saveCheckpoint(os);
    return os.str();
}

bool
restoreResumePayload(const std::string &payload, Domain &domain,
                     Region *region, std::string *error)
{
    std::istringstream is(payload, std::ios::binary);
    BinaryReader r(is);
    r.expectTag("TDRESUME");
    const std::uint64_t version = r.readU64();
    if (r.ok() && version != 1) {
        r.fail("unsupported resume payload version " +
               std::to_string(version));
    }
    const bool has_region = r.readBool();
    if (!r.ok()) {
        *error = r.error();
        return false;
    }
    if (has_region != (region != nullptr)) {
        *error = "checkpoint instrumentation mismatch (saved "
                 "with/without a region)";
        return false;
    }
    domain.load(r);
    if (!r.ok()) {
        *error = r.error();
        return false;
    }
    if (region && !region->loadCheckpoint(is)) {
        *error = region->checkpointError();
        return false;
    }
    return true;
}

/** Write one generation; latch the first failure into the result. */
void
writeCheckpoint(ckpt::CheckpointSet &set, const Domain &domain,
                const Region *region, RunResult &result)
{
    const std::string payload = buildResumePayload(domain, region);
    if (set.save(static_cast<std::uint64_t>(domain.cycle()),
                 payload)) {
        ++result.checkpointsWritten;
    }
    // CheckpointSet::save warns (once) on the first failure; here we
    // only latch the result bookkeeping.
    if (set.degraded() && !result.ckptDegraded) {
        result.ckptDegraded = true;
        result.ckptError = set.status().message;
    }
}

} // namespace

RunResult
runBlast(const BlastConfig &config, Communicator *comm,
         const RunOptions &options)
{
    Domain domain(config, comm);
    RunResult result;

    std::unique_ptr<Region> region;
    if (options.instrument) {
        region = std::make_unique<Region>("blast", &domain, comm);
        region->setSyncInterval(options.syncInterval);
        region->setBlockingSync(options.blockingSync);
        region->setAsyncAnalyses(options.asyncAnalyses);
        region->setRelaxedStopQuery(options.relaxedStop);
        region->setCommDeadline(options.commDeadlineSeconds);
        region->setRankOfLocation([&domain](long loc) {
            return domain.rankOfLocation(loc);
        });
        AnalysisConfig ac = options.analysis;
        ac.provider = [](void *d, long loc) {
            return static_cast<Domain *>(d)->xd(loc);
        };
        region->addAnalysis(std::move(ac));
    }

    // Checkpointing, per rank: the rank's local state is its own
    // restart data, exactly like its store part.
    std::unique_ptr<ckpt::CheckpointSet> ckpt_set;
    if (!options.ckptPath.empty()) {
        ckpt_set = std::make_unique<ckpt::CheckpointSet>(
            rankStorePath(options.ckptPath, comm ? comm->rank() : 0,
                          comm ? comm->size() : 1),
            options.ckptKeep,
            store::parseDurabilityPolicy(options.ckptDurability));
        if (options.ckptWriteHook)
            ckpt_set->setWriteHook(options.ckptWriteHook);
    }

    if (options.resumeAuto && ckpt_set) {
        std::string payload, from_path;
        std::uint64_t at_iter = 0;
        if (ckpt_set->openNewestValid(&payload, &at_iter,
                                      &from_path)) {
            std::string error;
            if (restoreResumePayload(payload, domain, region.get(),
                                     &error)) {
                result.resumed = true;
                result.resumedFromIteration =
                    static_cast<long>(at_iter);
                TDFE_INFORM("blast run: resumed from '", from_path,
                            "' (iteration ", at_iter, ")");
            } else {
                // CRC-valid but unusable (e.g. written by a
                // differently-instrumented run): start fresh rather
                // than die — the checkpoint stays on disk for triage.
                TDFE_WARN("blast run: checkpoint '", from_path,
                          "' not usable (", error,
                          "); starting from scratch");
            }
        }
    }

    std::unique_ptr<FeatureStoreWriter> store;
    if (region && !options.storePath.empty()) {
        store = attachRankStore(*region, options.storePath,
                                options.analysis.ar.order + 1,
                                storeOptionsFrom(options), comm);
    }

    const bool gather = options.instrument || options.recordTrace;

    long attempt_iters = 0;
    obs::Heartbeat heartbeat(
        static_cast<std::uint64_t>(std::max(options.metricsEvery,
                                            0L)));
    Timer timer;
    while (!domain.finished()) {
        if (region)
            region->begin();

        {
            static obs::Counter steps("solver.steps_total");
            obs::SpanTimer step("solver.step", "solver");
            TimeIncrement(domain);
            LagrangeLeapFrog(domain);
            steps.add();
        }
        if (gather)
            domain.gatherProbes();
        if (options.recordTrace)
            result.trace.push_back(domain.probes());

        if (region) {
            region->end();
            if (options.honorStop && region->shouldStop()) {
                result.stoppedEarly = true;
                break;
            }
        }

        ++attempt_iters;
        heartbeat.tick(static_cast<std::uint64_t>(domain.cycle()));
        if (ckpt_set && options.ckptEvery > 0 &&
            domain.cycle() % options.ckptEvery == 0) {
            writeCheckpoint(*ckpt_set, domain, region.get(), result);
        }
        if (options.haltAfterIterations > 0 &&
            attempt_iters >= options.haltAfterIterations) {
            // Injected crash: leave without a final checkpoint,
            // exactly what a kill -9 at this iteration leaves behind.
            result.halted = true;
            break;
        }
        if (ckpt::interruptRequested()) {
            // Orderly shutdown: one final checkpoint so the resumed
            // run restarts from this exact iteration, then fall
            // through to the store seal below.
            if (ckpt_set)
                writeCheckpoint(*ckpt_set, domain, region.get(),
                                result);
            result.interrupted = true;
            break;
        }
    }
    result.seconds = timer.elapsed();

    result.iterations = domain.cycle();
    result.initialVelocity = domain.initialVelocity();
    if (region) {
        const CurveFitAnalysis &a = region->analysis(0);
        result.overheadSeconds = region->overheadSeconds();
        result.convergedIteration = a.convergedIteration();
        result.validationMse = a.lastValidationMse();
        result.commDegraded = region->commDegraded();
        if (a.config().feature == FeatureKind::BreakpointRadius) {
            result.breakPoint = a.breakPoint();
            result.featureValue =
                static_cast<double>(result.breakPoint.radius);
        } else {
            result.featureValue = a.extractFeature();
        }
    }
    if (ckpt_set && !result.ckptDegraded && ckpt_set->degraded()) {
        result.ckptDegraded = true;
        result.ckptError = ckpt_set->status().message;
    }

    if (store) {
        // Every query above has drained the region, so no appends
        // are pending.
        result.storeDegraded =
            region->featureStoreDegraded() || !store->ok();
        RankMergeOptions merge;
        merge.policy =
            parseMergePolicy(options.storeMergePolicy);
        merge.keepParts = options.storeKeepParts;
        merge.storeOptions = storeOptionsFrom(options);
        result.storeBytes = finishRankStore(
            *region, std::move(store), options.storePath, comm,
            merge);
    }
    result.report = obs::captureRunReport();
    return result;
}

RunResult
runBlastResilient(const BlastConfig &config, Communicator *comm,
                  const RunOptions &options)
{
    TDFE_ASSERT(!options.ckptPath.empty(),
                "resilient runs need a checkpoint path");
    const bool segmented = !options.storePath.empty();
    TDFE_ASSERT(!segmented || !comm || comm->size() <= 1,
                "segmented store stitching supports single-rank "
                "runs only");

    RunOptions attempt = options;
    std::vector<std::string> segments;
    int restarts = 0;
    for (;;) {
        if (segmented) {
            attempt.storePath = options.storePath + ".seg" +
                                std::to_string(segments.size());
            segments.push_back(attempt.storePath);
        }
        RunResult result = runBlast(config, comm, attempt);
        result.restarts = restarts;

        if (result.halted && !ckpt::interruptRequested() &&
            restarts < options.maxRestarts) {
            ++restarts;
            // The injected crash fires once; every retry resumes
            // from the newest valid generation it left behind.
            attempt.haltAfterIterations = 0;
            attempt.resumeAuto = true;
            TDFE_INFORM("blast supervisor: attempt crashed at "
                        "iteration ", result.iterations,
                        "; restarting (attempt ", restarts + 1, ")");
            continue;
        }

        if (segmented) {
            result.storeBytes = stitchSegmentStores(
                segments, options.storePath,
                storeOptionsFrom(options));
            if (!options.storeKeepParts) {
                for (const std::string &seg : segments)
                    std::remove(seg.c_str());
            }
        }
        return result;
    }
}

} // namespace blast

} // namespace tdfe
