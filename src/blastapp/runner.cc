#include "blastapp/runner.hh"

#include <memory>

#include "base/logging.hh"
#include "base/timer.hh"
#include "core/region.hh"
#include "par/store_merge.hh"

namespace tdfe
{

namespace blast
{

RunResult
runBlast(const BlastConfig &config, Communicator *comm,
         const RunOptions &options)
{
    Domain domain(config, comm);
    RunResult result;

    std::unique_ptr<Region> region;
    if (options.instrument) {
        region = std::make_unique<Region>("blast", &domain, comm);
        region->setSyncInterval(options.syncInterval);
        region->setBlockingSync(options.blockingSync);
        region->setAsyncAnalyses(options.asyncAnalyses);
        region->setRelaxedStopQuery(options.relaxedStop);
        region->setRankOfLocation([&domain](long loc) {
            return domain.rankOfLocation(loc);
        });
        AnalysisConfig ac = options.analysis;
        ac.provider = [](void *d, long loc) {
            return static_cast<Domain *>(d)->xd(loc);
        };
        region->addAnalysis(std::move(ac));
    }

    std::unique_ptr<FeatureStoreWriter> store;
    if (region && !options.storePath.empty()) {
        StoreOptions store_options;
        store_options.async = options.storeAsync;
        store_options.durability =
            store::parseDurabilityPolicy(options.storeDurability);
        store = attachRankStore(*region, options.storePath,
                                options.analysis.ar.order + 1,
                                store_options, comm);
    }

    const bool gather = options.instrument || options.recordTrace;

    Timer timer;
    while (!domain.finished()) {
        if (region)
            region->begin();

        TimeIncrement(domain);
        LagrangeLeapFrog(domain);
        if (gather)
            domain.gatherProbes();
        if (options.recordTrace)
            result.trace.push_back(domain.probes());

        if (region) {
            region->end();
            if (options.honorStop && region->shouldStop()) {
                result.stoppedEarly = true;
                break;
            }
        }
    }
    result.seconds = timer.elapsed();

    result.iterations = domain.cycle();
    result.initialVelocity = domain.initialVelocity();
    if (region) {
        const CurveFitAnalysis &a = region->analysis(0);
        result.overheadSeconds = region->overheadSeconds();
        result.convergedIteration = a.convergedIteration();
        result.validationMse = a.lastValidationMse();
        if (a.config().feature == FeatureKind::BreakpointRadius) {
            result.breakPoint = a.breakPoint();
            result.featureValue =
                static_cast<double>(result.breakPoint.radius);
        } else {
            result.featureValue = a.extractFeature();
        }
    }

    if (store) {
        // Every query above has drained the region, so no appends
        // are pending.
        result.storeDegraded =
            region->featureStoreDegraded() || !store->ok();
        RankMergeOptions merge;
        merge.policy =
            parseMergePolicy(options.storeMergePolicy);
        merge.keepParts = options.storeKeepParts;
        result.storeBytes = finishRankStore(
            *region, std::move(store), options.storePath, comm,
            merge);
    }
    return result;
}

} // namespace blast

} // namespace tdfe
