/**
 * @file
 * Experiment harness for the material-deformation case: runs the
 * blast app bare (the paper's "origin"), instrumented ("non-stop"),
 * or instrumented with early termination ("stop"), and returns the
 * measurements the paper's Tables II-IV report.
 */

#ifndef TDFE_BLASTAPP_RUNNER_HH
#define TDFE_BLASTAPP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "blastapp/domain.hh"
#include "ckpt/checkpoint.hh"
#include "core/analysis.hh"
#include "core/threshold.hh"
#include "obs/report.hh"

namespace tdfe
{

namespace blast
{

/** What the harness should do around the bare simulation. */
struct RunOptions
{
    /** Attach a td region with one analysis. */
    bool instrument = false;
    /** Honour the region's early-termination request. */
    bool honorStop = false;
    /** Record the full probe trace (ground-truth extraction). */
    bool recordTrace = false;
    /** Pipeline the analysis ingest: snapshot at end(), digest on
     *  the pool (results stay bitwise identical; see
     *  Region::setAsyncAnalyses). The digest overlaps the next
     *  solver step in non-stop runs; with honorStop the harness
     *  polls shouldStop() every iteration, which drains the epoch
     *  there — the stop still fires on the identical iteration, and
     *  the drained digest runs on the pool workers, but nothing is
     *  hidden under the solver. */
    bool asyncAnalyses = false;
    /** Relaxed stop query (see Region::setRelaxedStopQuery): the
     *  per-iteration shouldStop() poll returns the last published
     *  decision without draining the pipeline, so the digest keeps
     *  overlapping the solver even with honorStop — at the cost of
     *  stopping at most one iteration later. */
    bool relaxedStop = false;
    /** Reference mode: blocking collectives inside end() (the
     *  pre-pipelined protocol; bench/rank_pipeline measures the
     *  overlapped protocol against it). */
    bool blockingSync = false;
    /** Analysis specification (provider is filled by the harness). */
    AnalysisConfig analysis;
    /** Iterations between collective stop syncs. */
    long syncInterval = 10;
    /** Write extracted features to a trace store at this path
     *  (empty: disabled; requires instrument). Under a multi-rank
     *  communicator every rank writes "<path>.rk<rank>" and rank 0
     *  merges them into <path> in rank order after the run. */
    std::string storePath;
    /** Flush store blocks on the thread pool (see StoreOptions). */
    bool storeAsync = false;
    /** Store durability policy: "none", "flush", or "fsync" (see
     *  store::DurabilityPolicy; parsed at run time, fatal on other
     *  values). */
    std::string storeDurability = "none";
    /** Rank-merge policy for unreadable parts: "fail" or "skip"
     *  (see MergePolicy). */
    std::string storeMergePolicy = "fail";
    /** Keep per-rank store parts after the merge. */
    bool storeKeepParts = false;
    /** Publish a live manifest after sealed blocks so concurrent
     *  tail readers can follow the run (see store/live.hh). Under a
     *  multi-rank communicator the per-rank parts publish — a tail
     *  follows "<path>.rk<rank>"; the merged store appears whole. */
    bool storeLive = false;

    /** Crash-safe checkpointing + auto-resume (the resilient
     *  harness; see src/ckpt). @{ */
    /** Checkpoint path prefix (empty: checkpointing disabled).
     *  Generations land at "<prefix>.NNNNNN.tdck"; under a
     *  multi-rank comm each rank uses "<prefix>.rk<rank>". */
    std::string ckptPath;
    /** Iterations between checkpoints (0: only on interrupt). */
    long ckptEvery = 0;
    /** Generations kept; >= 2 so a torn newest generation still
     *  has a previous-good fallback. */
    int ckptKeep = 3;
    /** Checkpoint durability: "none", "flush", or "fsync". The
     *  default is the paranoid one — checkpoints are restart data,
     *  not an analysis artifact. */
    std::string ckptDurability = "fsync";
    /** Restore from the newest valid checkpoint before the loop
     *  (no-op when none exists). */
    bool resumeAuto = false;
    /** Restart attempts runBlastResilient may consume after an
     *  injected crash before giving up. */
    int maxRestarts = 8;
    /** Comm watchdog deadline for the region's stop protocol
     *  (seconds; 0 disables). See Region::setCommDeadline. */
    double commDeadlineSeconds = 0.0;
    /** Iterations between metrics heartbeat lines (--metrics-every;
     *  0 disables). Requires telemetry to be enabled (see
     *  obs::setMetricsEnabled / applyObsFlags) to show non-zero
     *  counters. */
    long metricsEvery = 0;
    /** Test seam: crash the attempt (leave the loop without a
     *  final checkpoint, as a kill would) after this many loop
     *  iterations of this attempt (0: disabled). */
    long haltAfterIterations = 0;
    /** Test seam: per-generation fault injection on checkpoint
     *  writes (see CheckpointSet::setWriteHook). */
    std::function<void(std::uint64_t, ckpt::WriteOptions &)>
        ckptWriteHook;
    /** @} */
};

/** Everything measured during one run. */
struct RunResult
{
    /** Iterations executed. */
    long iterations = 0;
    /** Wall-clock seconds of the whole loop. */
    double seconds = 0.0;
    /** Seconds the region spent inside the library. */
    double overheadSeconds = 0.0;
    /** True when the run terminated early on convergence. */
    bool stoppedEarly = false;
    /** Iteration at which the model converged (-1: never). */
    long convergedIteration = -1;
    /** Peak probe velocity at location 1 (threshold reference). */
    double initialVelocity = 0.0;
    /** Extracted feature (break-point radius), if instrumented. */
    double featureValue = -1.0;
    /** Detailed break-point, if instrumented. */
    BreakPoint breakPoint;
    /** Probe trace [iteration][location-1], if recorded. */
    std::vector<std::vector<double>> trace;
    /** Validation MSE at the end of training. */
    double validationMse = 0.0;
    /** Bytes of this rank's feature store (0: none written). */
    std::size_t storeBytes = 0;
    /** True when the feature sink degraded mid-run and was
     *  detached (the physics above are still exact). */
    bool storeDegraded = false;

    /** Resilience bookkeeping (see RunOptions' ckpt knobs). @{ */
    /** True when a SIGINT/SIGTERM stopped the loop (after an
     *  orderly final checkpoint + store seal). */
    bool interrupted = false;
    /** True when the test seam crashed this attempt (no final
     *  checkpoint — simulating a kill). */
    bool halted = false;
    /** True when this run restored state from a checkpoint. */
    bool resumed = false;
    /** Iteration the restored checkpoint was taken at (-1: none). */
    long resumedFromIteration = -1;
    /** Checkpoint generations written during the run. */
    long checkpointsWritten = 0;
    /** True when a checkpoint write failed (sticky; the run
     *  continued — checkpoint I/O never fatals). */
    bool ckptDegraded = false;
    /** First checkpoint failure's message. */
    std::string ckptError;
    /** True when the comm watchdog fired: a stop-protocol
     *  collective missed its deadline and the region fell back to
     *  its last published decision (results unchanged — analyses
     *  are replicated). */
    bool commDegraded = false;
    /** Restart attempts runBlastResilient consumed (0: the first
     *  attempt completed). */
    int restarts = 0;
    /** @} */

    /** End-of-run telemetry (empty unless metrics were enabled;
     *  see src/obs and --metrics-out). */
    obs::RunReport report;
};

/**
 * Run one blast experiment.
 *
 * @param config Domain/blast parameters.
 * @param comm Optional communicator; when given, every rank must
 *        call runBlast collectively with identical arguments.
 * @param options Harness behaviour.
 */
RunResult runBlast(const BlastConfig &config, Communicator *comm,
                   const RunOptions &options);

/**
 * Auto-resume supervisor around runBlast: run attempts until one
 * completes, restoring each retry from the newest valid checkpoint
 * (requires options.ckptPath). An injected crash (haltAfterIterations)
 * consumes a restart; a real SIGINT/SIGTERM ends the supervision with
 * result.interrupted set. When a feature store is configured, each
 * attempt writes its own "<store>.seg<k>" segment and the segments
 * are stitched — dropping the post-checkpoint overlap re-recorded by
 * the resumed attempt — into options.storePath at the end, so the
 * final store is record-identical to an uninterrupted run
 * (single-rank only; the crash-sweep test relies on this).
 */
RunResult runBlastResilient(const BlastConfig &config,
                            Communicator *comm,
                            const RunOptions &options);

} // namespace blast

} // namespace tdfe

#endif // TDFE_BLASTAPP_RUNNER_HH
