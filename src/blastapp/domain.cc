#include "blastapp/domain.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/serial.hh"
#include "par/comm.hh"

namespace tdfe
{

namespace blast
{

namespace
{

Euler3Config
makeEulerConfig(const BlastConfig &cfg)
{
    Euler3Config ec;
    ec.nx = cfg.size;
    ec.ny = cfg.size;
    ec.nz = cfg.size;
    ec.cfl = cfg.cfl;
    return ec;
}

} // namespace

Domain::Domain(const BlastConfig &config, Communicator *comm)
    : cfg(config), comm_(comm), solver_(makeEulerConfig(config), comm)
{
    TDFE_ASSERT(cfg.size >= 4, "blast domain too small");

    SedovSetup sedov;
    sedov.energy = cfg.sedovEnergy;
    applySedov(solver_, sedov);

    // The corner deposit represents 1/8 of a full-space blast.
    tEnd_ = sedovShockTime(8.0 * cfg.sedovEnergy, 1.0,
                           cfg.tEndFactor * cfg.size);

    probeLine.assign(static_cast<std::size_t>(cfg.size), 0.0);
    probeScratch.assign(probeLine.size(), 0.0);
}

double
Domain::xd(long loc) const
{
    TDFE_ASSERT(loc >= 1 && loc <= static_cast<long>(probeLine.size()),
                "probe location ", loc, " out of [1, ",
                probeLine.size(), "]");
    return probeLine[static_cast<std::size_t>(loc - 1)];
}

bool
Domain::finished() const
{
    if (cfg.maxIterations > 0 && solver_.cycle() >= cfg.maxIterations)
        return true;
    return solver_.time() >= tEnd_;
}

void
Domain::gatherProbes()
{
    // Owners fill their segment of the z-axis probe line; the
    // reduction sums owner values against zeros elsewhere.
    std::fill(probeScratch.begin(), probeScratch.end(), 0.0);
    for (long loc = 1; loc <= probeCount(); ++loc) {
        const int k = static_cast<int>(loc - 1);
        if (solver_.ownsZ(k)) {
            probeScratch[static_cast<std::size_t>(loc - 1)] =
                solver_.velocityMagnitude(0, 0, k);
        }
    }
    if (comm_ && comm_->size() > 1) {
        comm_->allreduceVec(probeScratch.data(), probeScratch.size(),
                            ReduceOp::Sum);
    }
    probeLine.swap(probeScratch);
    vInit = std::max(vInit, probeLine[0]);
}

int
Domain::rankOfLocation(long loc) const
{
    if (!comm_)
        return 0;
    const long k = loc - 1;
    const int nranks = comm_->size();
    // Mirrors the slab split in EulerSolver3D.
    for (int r = 0; r < nranks; ++r) {
        const long lo = (static_cast<long>(cfg.size) * r) / nranks;
        const long hi =
            (static_cast<long>(cfg.size) * (r + 1)) / nranks;
        if (k >= lo && k < hi)
            return r;
    }
    return nranks - 1;
}

void
TimeIncrement(Domain &domain)
{
    domain.dt = domain.solver_.computeDt();
}

void
LagrangeLeapFrog(Domain &domain)
{
    TDFE_ASSERT(domain.dt > 0.0,
                "LagrangeLeapFrog before TimeIncrement");
    domain.solver_.step(domain.dt);
}

void
Domain::save(BinaryWriter &w) const
{
    w.writeTag("blastdom");
    w.writeF64(dt);
    w.writeVec(probeLine);
    w.writeF64(vInit);
    solver_.save(w);
}

void
Domain::load(BinaryReader &r)
{
    r.expectTag("blastdom");
    const double ckpt_dt = r.readF64();
    std::vector<double> probes = r.readVec();
    if (!r.ok())
        return;
    if (probes.size() != probeLine.size()) {
        TDFE_FATAL("blast checkpoint probe line has ", probes.size(),
                   " locations, domain has ", probeLine.size());
    }
    dt = ckpt_dt;
    probeLine = std::move(probes);
    vInit = r.readF64();
    solver_.load(r);
}

} // namespace blast

} // namespace tdfe
