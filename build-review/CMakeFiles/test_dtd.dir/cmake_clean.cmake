file(REMOVE_RECURSE
  "CMakeFiles/test_dtd.dir/tests/test_dtd.cc.o"
  "CMakeFiles/test_dtd.dir/tests/test_dtd.cc.o.d"
  "test_dtd"
  "test_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
