# Empty compiler generated dependencies file for test_dtd.
# This may be replaced when dependencies are built.
