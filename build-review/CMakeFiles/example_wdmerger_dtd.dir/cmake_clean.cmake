file(REMOVE_RECURSE
  "CMakeFiles/example_wdmerger_dtd.dir/examples/wdmerger_dtd.cpp.o"
  "CMakeFiles/example_wdmerger_dtd.dir/examples/wdmerger_dtd.cpp.o.d"
  "example_wdmerger_dtd"
  "example_wdmerger_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wdmerger_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
