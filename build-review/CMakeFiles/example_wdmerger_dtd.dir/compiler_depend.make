# Empty compiler generated dependencies file for example_wdmerger_dtd.
# This may be replaced when dependencies are built.
