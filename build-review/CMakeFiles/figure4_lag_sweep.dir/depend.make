# Empty dependencies file for figure4_lag_sweep.
# This may be replaced when dependencies are built.
