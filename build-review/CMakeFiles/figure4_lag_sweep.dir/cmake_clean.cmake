file(REMOVE_RECURSE
  "CMakeFiles/figure4_lag_sweep.dir/bench/figure4_lag_sweep.cc.o"
  "CMakeFiles/figure4_lag_sweep.dir/bench/figure4_lag_sweep.cc.o.d"
  "figure4_lag_sweep"
  "figure4_lag_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_lag_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
