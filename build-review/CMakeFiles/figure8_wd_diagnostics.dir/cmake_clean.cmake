file(REMOVE_RECURSE
  "CMakeFiles/figure8_wd_diagnostics.dir/bench/figure8_wd_diagnostics.cc.o"
  "CMakeFiles/figure8_wd_diagnostics.dir/bench/figure8_wd_diagnostics.cc.o.d"
  "figure8_wd_diagnostics"
  "figure8_wd_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_wd_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
