# Empty compiler generated dependencies file for figure8_wd_diagnostics.
# This may be replaced when dependencies are built.
