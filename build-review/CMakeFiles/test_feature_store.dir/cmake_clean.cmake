file(REMOVE_RECURSE
  "CMakeFiles/test_feature_store.dir/tests/test_feature_store.cc.o"
  "CMakeFiles/test_feature_store.dir/tests/test_feature_store.cc.o.d"
  "test_feature_store"
  "test_feature_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
