file(REMOVE_RECURSE
  "CMakeFiles/test_iter_param.dir/tests/test_iter_param.cc.o"
  "CMakeFiles/test_iter_param.dir/tests/test_iter_param.cc.o.d"
  "test_iter_param"
  "test_iter_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iter_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
