# Empty dependencies file for test_iter_param.
# This may be replaced when dependencies are built.
