file(REMOVE_RECURSE
  "CMakeFiles/figure_horizon_forecast.dir/bench/figure_horizon_forecast.cc.o"
  "CMakeFiles/figure_horizon_forecast.dir/bench/figure_horizon_forecast.cc.o.d"
  "figure_horizon_forecast"
  "figure_horizon_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_horizon_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
