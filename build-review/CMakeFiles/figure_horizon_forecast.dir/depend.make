# Empty dependencies file for figure_horizon_forecast.
# This may be replaced when dependencies are built.
