# Empty compiler generated dependencies file for ablation_model_order.
# This may be replaced when dependencies are built.
