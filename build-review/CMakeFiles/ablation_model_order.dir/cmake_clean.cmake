file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_order.dir/bench/ablation_model_order.cc.o"
  "CMakeFiles/ablation_model_order.dir/bench/ablation_model_order.cc.o.d"
  "ablation_model_order"
  "ablation_model_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
