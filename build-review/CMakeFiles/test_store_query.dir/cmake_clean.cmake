file(REMOVE_RECURSE
  "CMakeFiles/test_store_query.dir/tests/test_store_query.cc.o"
  "CMakeFiles/test_store_query.dir/tests/test_store_query.cc.o.d"
  "test_store_query"
  "test_store_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
