file(REMOVE_RECURSE
  "CMakeFiles/test_sph_system.dir/tests/test_sph_system.cc.o"
  "CMakeFiles/test_sph_system.dir/tests/test_sph_system.cc.o.d"
  "test_sph_system"
  "test_sph_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sph_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
