# Empty compiler generated dependencies file for test_sph_system.
# This may be replaced when dependencies are built.
