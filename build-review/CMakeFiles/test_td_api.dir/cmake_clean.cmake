file(REMOVE_RECURSE
  "CMakeFiles/test_td_api.dir/tests/test_td_api.cc.o"
  "CMakeFiles/test_td_api.dir/tests/test_td_api.cc.o.d"
  "test_td_api"
  "test_td_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_td_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
