# Empty compiler generated dependencies file for test_td_api.
# This may be replaced when dependencies are built.
