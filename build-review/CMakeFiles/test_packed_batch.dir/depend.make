# Empty dependencies file for test_packed_batch.
# This may be replaced when dependencies are built.
