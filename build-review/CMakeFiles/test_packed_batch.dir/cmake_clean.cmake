file(REMOVE_RECURSE
  "CMakeFiles/test_packed_batch.dir/tests/test_packed_batch.cc.o"
  "CMakeFiles/test_packed_batch.dir/tests/test_packed_batch.cc.o.d"
  "test_packed_batch"
  "test_packed_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
