file(REMOVE_RECURSE
  "CMakeFiles/example_checkpoint_restart.dir/examples/checkpoint_restart.cpp.o"
  "CMakeFiles/example_checkpoint_restart.dir/examples/checkpoint_restart.cpp.o.d"
  "example_checkpoint_restart"
  "example_checkpoint_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checkpoint_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
