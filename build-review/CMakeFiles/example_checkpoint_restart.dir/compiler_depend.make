# Empty compiler generated dependencies file for example_checkpoint_restart.
# This may be replaced when dependencies are built.
