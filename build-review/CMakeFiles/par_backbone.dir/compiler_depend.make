# Empty compiler generated dependencies file for par_backbone.
# This may be replaced when dependencies are built.
