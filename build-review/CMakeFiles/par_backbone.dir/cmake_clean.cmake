file(REMOVE_RECURSE
  "CMakeFiles/par_backbone.dir/bench/par_backbone.cc.o"
  "CMakeFiles/par_backbone.dir/bench/par_backbone.cc.o.d"
  "par_backbone"
  "par_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
