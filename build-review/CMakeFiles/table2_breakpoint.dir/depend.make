# Empty dependencies file for table2_breakpoint.
# This may be replaced when dependencies are built.
