file(REMOVE_RECURSE
  "CMakeFiles/table2_breakpoint.dir/bench/table2_breakpoint.cc.o"
  "CMakeFiles/table2_breakpoint.dir/bench/table2_breakpoint.cc.o.d"
  "table2_breakpoint"
  "table2_breakpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_breakpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
