file(REMOVE_RECURSE
  "CMakeFiles/store_throughput.dir/bench/store_throughput.cc.o"
  "CMakeFiles/store_throughput.dir/bench/store_throughput.cc.o.d"
  "store_throughput"
  "store_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
