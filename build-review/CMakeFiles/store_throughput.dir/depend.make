# Empty dependencies file for store_throughput.
# This may be replaced when dependencies are built.
