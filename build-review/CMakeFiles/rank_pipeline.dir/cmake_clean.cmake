file(REMOVE_RECURSE
  "CMakeFiles/rank_pipeline.dir/bench/rank_pipeline.cc.o"
  "CMakeFiles/rank_pipeline.dir/bench/rank_pipeline.cc.o.d"
  "rank_pipeline"
  "rank_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
