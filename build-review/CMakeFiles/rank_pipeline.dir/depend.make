# Empty dependencies file for rank_pipeline.
# This may be replaced when dependencies are built.
