file(REMOVE_RECURSE
  "CMakeFiles/test_blastapp.dir/tests/test_blastapp.cc.o"
  "CMakeFiles/test_blastapp.dir/tests/test_blastapp.cc.o.d"
  "test_blastapp"
  "test_blastapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blastapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
