# Empty compiler generated dependencies file for test_blastapp.
# This may be replaced when dependencies are built.
