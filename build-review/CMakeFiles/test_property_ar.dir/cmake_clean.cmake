file(REMOVE_RECURSE
  "CMakeFiles/test_property_ar.dir/tests/test_property_ar.cc.o"
  "CMakeFiles/test_property_ar.dir/tests/test_property_ar.cc.o.d"
  "test_property_ar"
  "test_property_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
