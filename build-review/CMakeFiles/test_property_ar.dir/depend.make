# Empty dependencies file for test_property_ar.
# This may be replaced when dependencies are built.
