file(REMOVE_RECURSE
  "CMakeFiles/test_async_region.dir/tests/test_async_region.cc.o"
  "CMakeFiles/test_async_region.dir/tests/test_async_region.cc.o.d"
  "test_async_region"
  "test_async_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
