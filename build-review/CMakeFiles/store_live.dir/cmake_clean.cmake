file(REMOVE_RECURSE
  "CMakeFiles/store_live.dir/bench/store_live.cc.o"
  "CMakeFiles/store_live.dir/bench/store_live.cc.o.d"
  "store_live"
  "store_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
