# Empty compiler generated dependencies file for store_live.
# This may be replaced when dependencies are built.
