file(REMOVE_RECURSE
  "CMakeFiles/example_early_termination.dir/examples/early_termination.cpp.o"
  "CMakeFiles/example_early_termination.dir/examples/early_termination.cpp.o.d"
  "example_early_termination"
  "example_early_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_early_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
