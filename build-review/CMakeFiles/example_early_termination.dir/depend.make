# Empty dependencies file for example_early_termination.
# This may be replaced when dependencies are built.
