file(REMOVE_RECURSE
  "CMakeFiles/table4_early_termination.dir/bench/table4_early_termination.cc.o"
  "CMakeFiles/table4_early_termination.dir/bench/table4_early_termination.cc.o.d"
  "table4_early_termination"
  "table4_early_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_early_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
