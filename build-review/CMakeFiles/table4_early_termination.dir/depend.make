# Empty dependencies file for table4_early_termination.
# This may be replaced when dependencies are built.
