# Empty compiler generated dependencies file for ablation_io_cost.
# This may be replaced when dependencies are built.
