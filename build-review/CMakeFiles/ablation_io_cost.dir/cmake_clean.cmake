file(REMOVE_RECURSE
  "CMakeFiles/ablation_io_cost.dir/bench/ablation_io_cost.cc.o"
  "CMakeFiles/ablation_io_cost.dir/bench/ablation_io_cost.cc.o.d"
  "ablation_io_cost"
  "ablation_io_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_io_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
