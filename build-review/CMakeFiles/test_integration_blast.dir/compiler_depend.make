# Empty compiler generated dependencies file for test_integration_blast.
# This may be replaced when dependencies are built.
