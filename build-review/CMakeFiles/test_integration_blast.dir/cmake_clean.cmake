file(REMOVE_RECURSE
  "CMakeFiles/test_integration_blast.dir/tests/test_integration_blast.cc.o"
  "CMakeFiles/test_integration_blast.dir/tests/test_integration_blast.cc.o.d"
  "test_integration_blast"
  "test_integration_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
