file(REMOVE_RECURSE
  "CMakeFiles/test_ar_model.dir/tests/test_ar_model.cc.o"
  "CMakeFiles/test_ar_model.dir/tests/test_ar_model.cc.o.d"
  "test_ar_model"
  "test_ar_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ar_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
