# Empty compiler generated dependencies file for test_ar_model.
# This may be replaced when dependencies are built.
