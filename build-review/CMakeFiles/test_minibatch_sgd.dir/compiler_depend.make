# Empty compiler generated dependencies file for test_minibatch_sgd.
# This may be replaced when dependencies are built.
