file(REMOVE_RECURSE
  "CMakeFiles/test_minibatch_sgd.dir/tests/test_minibatch_sgd.cc.o"
  "CMakeFiles/test_minibatch_sgd.dir/tests/test_minibatch_sgd.cc.o.d"
  "test_minibatch_sgd"
  "test_minibatch_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minibatch_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
