# Empty dependencies file for test_postproc.
# This may be replaced when dependencies are built.
