file(REMOVE_RECURSE
  "CMakeFiles/test_postproc.dir/tests/test_postproc.cc.o"
  "CMakeFiles/test_postproc.dir/tests/test_postproc.cc.o.d"
  "test_postproc"
  "test_postproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
