# Empty dependencies file for ablation_minibatch.
# This may be replaced when dependencies are built.
