file(REMOVE_RECURSE
  "CMakeFiles/ablation_minibatch.dir/bench/ablation_minibatch.cc.o"
  "CMakeFiles/ablation_minibatch.dir/bench/ablation_minibatch.cc.o.d"
  "ablation_minibatch"
  "ablation_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
