# Empty compiler generated dependencies file for test_changepoint.
# This may be replaced when dependencies are built.
