file(REMOVE_RECURSE
  "CMakeFiles/test_changepoint.dir/tests/test_changepoint.cc.o"
  "CMakeFiles/test_changepoint.dir/tests/test_changepoint.cc.o.d"
  "test_changepoint"
  "test_changepoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_changepoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
