# Empty dependencies file for test_rls.
# This may be replaced when dependencies are built.
