file(REMOVE_RECURSE
  "CMakeFiles/test_rls.dir/tests/test_rls.cc.o"
  "CMakeFiles/test_rls.dir/tests/test_rls.cc.o.d"
  "test_rls"
  "test_rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
