file(REMOVE_RECURSE
  "CMakeFiles/test_clover2d.dir/tests/test_clover2d.cc.o"
  "CMakeFiles/test_clover2d.dir/tests/test_clover2d.cc.o.d"
  "test_clover2d"
  "test_clover2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clover2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
