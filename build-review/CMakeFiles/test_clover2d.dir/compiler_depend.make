# Empty compiler generated dependencies file for test_clover2d.
# This may be replaced when dependencies are built.
