# Empty compiler generated dependencies file for test_store_live.
# This may be replaced when dependencies are built.
