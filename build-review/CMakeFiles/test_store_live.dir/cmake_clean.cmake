file(REMOVE_RECURSE
  "CMakeFiles/test_store_live.dir/tests/test_store_live.cc.o"
  "CMakeFiles/test_store_live.dir/tests/test_store_live.cc.o.d"
  "test_store_live"
  "test_store_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
