# Empty dependencies file for test_hydro.
# This may be replaced when dependencies are built.
