file(REMOVE_RECURSE
  "CMakeFiles/test_hydro.dir/tests/test_hydro.cc.o"
  "CMakeFiles/test_hydro.dir/tests/test_hydro.cc.o.d"
  "test_hydro"
  "test_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
