file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_for.dir/tests/test_parallel_for.cc.o"
  "CMakeFiles/test_parallel_for.dir/tests/test_parallel_for.cc.o.d"
  "test_parallel_for"
  "test_parallel_for.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_for.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
