# Empty dependencies file for test_parallel_for.
# This may be replaced when dependencies are built.
