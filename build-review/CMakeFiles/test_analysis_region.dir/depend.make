# Empty dependencies file for test_analysis_region.
# This may be replaced when dependencies are built.
