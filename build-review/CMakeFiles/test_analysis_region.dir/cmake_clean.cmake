file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_region.dir/tests/test_analysis_region.cc.o"
  "CMakeFiles/test_analysis_region.dir/tests/test_analysis_region.cc.o.d"
  "test_analysis_region"
  "test_analysis_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
