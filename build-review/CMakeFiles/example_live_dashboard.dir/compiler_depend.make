# Empty compiler generated dependencies file for example_live_dashboard.
# This may be replaced when dependencies are built.
