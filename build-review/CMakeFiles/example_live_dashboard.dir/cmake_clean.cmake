file(REMOVE_RECURSE
  "CMakeFiles/example_live_dashboard.dir/examples/live_dashboard.cpp.o"
  "CMakeFiles/example_live_dashboard.dir/examples/live_dashboard.cpp.o.d"
  "example_live_dashboard"
  "example_live_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
