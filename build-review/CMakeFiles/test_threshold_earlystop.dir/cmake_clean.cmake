file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_earlystop.dir/tests/test_threshold_earlystop.cc.o"
  "CMakeFiles/test_threshold_earlystop.dir/tests/test_threshold_earlystop.cc.o.d"
  "test_threshold_earlystop"
  "test_threshold_earlystop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_earlystop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
