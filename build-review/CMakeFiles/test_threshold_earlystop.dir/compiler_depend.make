# Empty compiler generated dependencies file for test_threshold_earlystop.
# This may be replaced when dependencies are built.
