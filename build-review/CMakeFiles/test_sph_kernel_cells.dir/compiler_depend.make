# Empty compiler generated dependencies file for test_sph_kernel_cells.
# This may be replaced when dependencies are built.
