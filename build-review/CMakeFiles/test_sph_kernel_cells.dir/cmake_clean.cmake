file(REMOVE_RECURSE
  "CMakeFiles/test_sph_kernel_cells.dir/tests/test_sph_kernel_cells.cc.o"
  "CMakeFiles/test_sph_kernel_cells.dir/tests/test_sph_kernel_cells.cc.o.d"
  "test_sph_kernel_cells"
  "test_sph_kernel_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sph_kernel_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
