# Empty compiler generated dependencies file for test_comm_nonblocking.
# This may be replaced when dependencies are built.
