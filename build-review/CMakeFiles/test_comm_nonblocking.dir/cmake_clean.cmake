file(REMOVE_RECURSE
  "CMakeFiles/test_comm_nonblocking.dir/tests/test_comm_nonblocking.cc.o"
  "CMakeFiles/test_comm_nonblocking.dir/tests/test_comm_nonblocking.cc.o.d"
  "test_comm_nonblocking"
  "test_comm_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
