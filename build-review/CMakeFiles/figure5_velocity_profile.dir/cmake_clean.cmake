file(REMOVE_RECURSE
  "CMakeFiles/figure5_velocity_profile.dir/bench/figure5_velocity_profile.cc.o"
  "CMakeFiles/figure5_velocity_profile.dir/bench/figure5_velocity_profile.cc.o.d"
  "figure5_velocity_profile"
  "figure5_velocity_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_velocity_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
