# Empty compiler generated dependencies file for figure5_velocity_profile.
# This may be replaced when dependencies are built.
