file(REMOVE_RECURSE
  "CMakeFiles/test_region_multi.dir/tests/test_region_multi.cc.o"
  "CMakeFiles/test_region_multi.dir/tests/test_region_multi.cc.o.d"
  "test_region_multi"
  "test_region_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
