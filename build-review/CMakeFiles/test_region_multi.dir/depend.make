# Empty dependencies file for test_region_multi.
# This may be replaced when dependencies are built.
