# Empty dependencies file for table6_delay_time.
# This may be replaced when dependencies are built.
