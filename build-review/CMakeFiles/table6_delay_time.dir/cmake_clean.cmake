file(REMOVE_RECURSE
  "CMakeFiles/table6_delay_time.dir/bench/table6_delay_time.cc.o"
  "CMakeFiles/table6_delay_time.dir/bench/table6_delay_time.cc.o.d"
  "table6_delay_time"
  "table6_delay_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_delay_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
