# Empty compiler generated dependencies file for test_lagrangian.
# This may be replaced when dependencies are built.
