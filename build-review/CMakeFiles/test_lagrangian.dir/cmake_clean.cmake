file(REMOVE_RECURSE
  "CMakeFiles/test_lagrangian.dir/tests/test_lagrangian.cc.o"
  "CMakeFiles/test_lagrangian.dir/tests/test_lagrangian.cc.o.d"
  "test_lagrangian"
  "test_lagrangian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lagrangian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
