file(REMOVE_RECURSE
  "CMakeFiles/test_integration_clover.dir/tests/test_integration_clover.cc.o"
  "CMakeFiles/test_integration_clover.dir/tests/test_integration_clover.cc.o.d"
  "test_integration_clover"
  "test_integration_clover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_clover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
