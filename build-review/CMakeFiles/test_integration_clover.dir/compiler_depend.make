# Empty compiler generated dependencies file for test_integration_clover.
# This may be replaced when dependencies are built.
