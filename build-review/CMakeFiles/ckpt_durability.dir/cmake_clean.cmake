file(REMOVE_RECURSE
  "CMakeFiles/ckpt_durability.dir/bench/ckpt_durability.cc.o"
  "CMakeFiles/ckpt_durability.dir/bench/ckpt_durability.cc.o.d"
  "ckpt_durability"
  "ckpt_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
