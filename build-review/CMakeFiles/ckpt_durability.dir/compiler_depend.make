# Empty compiler generated dependencies file for ckpt_durability.
# This may be replaced when dependencies are built.
