file(REMOVE_RECURSE
  "CMakeFiles/figure7_wd_fit.dir/bench/figure7_wd_fit.cc.o"
  "CMakeFiles/figure7_wd_fit.dir/bench/figure7_wd_fit.cc.o.d"
  "figure7_wd_fit"
  "figure7_wd_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_wd_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
