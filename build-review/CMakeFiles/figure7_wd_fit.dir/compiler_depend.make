# Empty compiler generated dependencies file for figure7_wd_fit.
# This may be replaced when dependencies are built.
