# Empty dependencies file for example_custom_feature.
# This may be replaced when dependencies are built.
