file(REMOVE_RECURSE
  "CMakeFiles/example_custom_feature.dir/examples/custom_feature.cpp.o"
  "CMakeFiles/example_custom_feature.dir/examples/custom_feature.cpp.o.d"
  "example_custom_feature"
  "example_custom_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
