file(REMOVE_RECURSE
  "CMakeFiles/test_store_sink.dir/tests/test_store_sink.cc.o"
  "CMakeFiles/test_store_sink.dir/tests/test_store_sink.cc.o.d"
  "test_store_sink"
  "test_store_sink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_sink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
