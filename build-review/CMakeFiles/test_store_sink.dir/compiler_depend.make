# Empty compiler generated dependencies file for test_store_sink.
# This may be replaced when dependencies are built.
