file(REMOVE_RECURSE
  "CMakeFiles/async_pipeline.dir/bench/async_pipeline.cc.o"
  "CMakeFiles/async_pipeline.dir/bench/async_pipeline.cc.o.d"
  "async_pipeline"
  "async_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
