# Empty compiler generated dependencies file for async_pipeline.
# This may be replaced when dependencies are built.
