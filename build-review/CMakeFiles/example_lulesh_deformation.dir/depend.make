# Empty dependencies file for example_lulesh_deformation.
# This may be replaced when dependencies are built.
