file(REMOVE_RECURSE
  "CMakeFiles/example_lulesh_deformation.dir/examples/lulesh_deformation.cpp.o"
  "CMakeFiles/example_lulesh_deformation.dir/examples/lulesh_deformation.cpp.o.d"
  "example_lulesh_deformation"
  "example_lulesh_deformation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lulesh_deformation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
