# Empty compiler generated dependencies file for simd_hotpath.
# This may be replaced when dependencies are built.
