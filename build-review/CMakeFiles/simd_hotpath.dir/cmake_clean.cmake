file(REMOVE_RECURSE
  "CMakeFiles/simd_hotpath.dir/bench/simd_hotpath.cc.o"
  "CMakeFiles/simd_hotpath.dir/bench/simd_hotpath.cc.o.d"
  "simd_hotpath"
  "simd_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
