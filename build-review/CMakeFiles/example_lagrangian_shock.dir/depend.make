# Empty dependencies file for example_lagrangian_shock.
# This may be replaced when dependencies are built.
