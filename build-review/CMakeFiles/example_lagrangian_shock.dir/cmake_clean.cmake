file(REMOVE_RECURSE
  "CMakeFiles/example_lagrangian_shock.dir/examples/lagrangian_shock.cpp.o"
  "CMakeFiles/example_lagrangian_shock.dir/examples/lagrangian_shock.cpp.o.d"
  "example_lagrangian_shock"
  "example_lagrangian_shock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lagrangian_shock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
