file(REMOVE_RECURSE
  "CMakeFiles/table1_curvefit_error.dir/bench/table1_curvefit_error.cc.o"
  "CMakeFiles/table1_curvefit_error.dir/bench/table1_curvefit_error.cc.o.d"
  "table1_curvefit_error"
  "table1_curvefit_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_curvefit_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
