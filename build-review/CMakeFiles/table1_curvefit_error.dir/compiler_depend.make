# Empty compiler generated dependencies file for table1_curvefit_error.
# This may be replaced when dependencies are built.
