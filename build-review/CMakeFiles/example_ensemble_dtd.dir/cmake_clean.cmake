file(REMOVE_RECURSE
  "CMakeFiles/example_ensemble_dtd.dir/examples/ensemble_dtd.cpp.o"
  "CMakeFiles/example_ensemble_dtd.dir/examples/ensemble_dtd.cpp.o.d"
  "example_ensemble_dtd"
  "example_ensemble_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ensemble_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
