# Empty dependencies file for example_ensemble_dtd.
# This may be replaced when dependencies are built.
