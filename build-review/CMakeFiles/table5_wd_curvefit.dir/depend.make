# Empty dependencies file for table5_wd_curvefit.
# This may be replaced when dependencies are built.
