file(REMOVE_RECURSE
  "CMakeFiles/table5_wd_curvefit.dir/bench/table5_wd_curvefit.cc.o"
  "CMakeFiles/table5_wd_curvefit.dir/bench/table5_wd_curvefit.cc.o.d"
  "table5_wd_curvefit"
  "table5_wd_curvefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_wd_curvefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
