file(REMOVE_RECURSE
  "CMakeFiles/test_euler3d.dir/tests/test_euler3d.cc.o"
  "CMakeFiles/test_euler3d.dir/tests/test_euler3d.cc.o.d"
  "test_euler3d"
  "test_euler3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euler3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
