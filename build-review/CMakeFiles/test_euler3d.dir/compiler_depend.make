# Empty compiler generated dependencies file for test_euler3d.
# This may be replaced when dependencies are built.
