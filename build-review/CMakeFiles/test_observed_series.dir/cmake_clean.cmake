file(REMOVE_RECURSE
  "CMakeFiles/test_observed_series.dir/tests/test_observed_series.cc.o"
  "CMakeFiles/test_observed_series.dir/tests/test_observed_series.cc.o.d"
  "test_observed_series"
  "test_observed_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observed_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
