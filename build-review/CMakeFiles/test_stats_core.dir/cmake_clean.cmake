file(REMOVE_RECURSE
  "CMakeFiles/test_stats_core.dir/tests/test_stats_core.cc.o"
  "CMakeFiles/test_stats_core.dir/tests/test_stats_core.cc.o.d"
  "test_stats_core"
  "test_stats_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
