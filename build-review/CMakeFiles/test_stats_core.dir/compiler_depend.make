# Empty compiler generated dependencies file for test_stats_core.
# This may be replaced when dependencies are built.
