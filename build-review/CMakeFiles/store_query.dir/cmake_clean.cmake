file(REMOVE_RECURSE
  "CMakeFiles/store_query.dir/bench/store_query.cc.o"
  "CMakeFiles/store_query.dir/bench/store_query.cc.o.d"
  "store_query"
  "store_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
