# Empty compiler generated dependencies file for store_query.
# This may be replaced when dependencies are built.
