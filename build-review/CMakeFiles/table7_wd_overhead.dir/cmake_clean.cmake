file(REMOVE_RECURSE
  "CMakeFiles/table7_wd_overhead.dir/bench/table7_wd_overhead.cc.o"
  "CMakeFiles/table7_wd_overhead.dir/bench/table7_wd_overhead.cc.o.d"
  "table7_wd_overhead"
  "table7_wd_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_wd_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
