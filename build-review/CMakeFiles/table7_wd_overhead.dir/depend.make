# Empty dependencies file for table7_wd_overhead.
# This may be replaced when dependencies are built.
