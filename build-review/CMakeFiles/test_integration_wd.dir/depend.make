# Empty dependencies file for test_integration_wd.
# This may be replaced when dependencies are built.
