file(REMOVE_RECURSE
  "CMakeFiles/test_integration_wd.dir/tests/test_integration_wd.cc.o"
  "CMakeFiles/test_integration_wd.dir/tests/test_integration_wd.cc.o.d"
  "test_integration_wd"
  "test_integration_wd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_wd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
