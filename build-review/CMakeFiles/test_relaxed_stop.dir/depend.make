# Empty dependencies file for test_relaxed_stop.
# This may be replaced when dependencies are built.
