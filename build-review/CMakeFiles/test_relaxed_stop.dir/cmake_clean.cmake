file(REMOVE_RECURSE
  "CMakeFiles/test_relaxed_stop.dir/tests/test_relaxed_stop.cc.o"
  "CMakeFiles/test_relaxed_stop.dir/tests/test_relaxed_stop.cc.o.d"
  "test_relaxed_stop"
  "test_relaxed_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relaxed_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
