# Empty dependencies file for example_clover_shock.
# This may be replaced when dependencies are built.
