file(REMOVE_RECURSE
  "CMakeFiles/example_clover_shock.dir/examples/clover_shock.cpp.o"
  "CMakeFiles/example_clover_shock.dir/examples/clover_shock.cpp.o.d"
  "example_clover_shock"
  "example_clover_shock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_clover_shock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
