file(REMOVE_RECURSE
  "CMakeFiles/test_wdmerger.dir/tests/test_wdmerger.cc.o"
  "CMakeFiles/test_wdmerger.dir/tests/test_wdmerger.cc.o.d"
  "test_wdmerger"
  "test_wdmerger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wdmerger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
