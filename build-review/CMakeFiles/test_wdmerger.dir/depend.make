# Empty dependencies file for test_wdmerger.
# This may be replaced when dependencies are built.
