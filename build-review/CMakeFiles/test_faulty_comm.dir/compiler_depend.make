# Empty compiler generated dependencies file for test_faulty_comm.
# This may be replaced when dependencies are built.
