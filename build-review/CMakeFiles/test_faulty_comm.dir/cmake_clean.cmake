file(REMOVE_RECURSE
  "CMakeFiles/test_faulty_comm.dir/tests/test_faulty_comm.cc.o"
  "CMakeFiles/test_faulty_comm.dir/tests/test_faulty_comm.cc.o.d"
  "test_faulty_comm"
  "test_faulty_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faulty_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
