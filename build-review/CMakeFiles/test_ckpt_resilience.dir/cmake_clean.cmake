file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_resilience.dir/tests/test_ckpt_resilience.cc.o"
  "CMakeFiles/test_ckpt_resilience.dir/tests/test_ckpt_resilience.cc.o.d"
  "test_ckpt_resilience"
  "test_ckpt_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
