# Empty compiler generated dependencies file for tdfe.
# This may be replaced when dependencies are built.
