file(REMOVE_RECURSE
  "libtdfe.a"
)
