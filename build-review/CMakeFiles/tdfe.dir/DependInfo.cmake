
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/cli.cc" "CMakeFiles/tdfe.dir/src/base/cli.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/cli.cc.o.d"
  "/root/repo/src/base/csv.cc" "CMakeFiles/tdfe.dir/src/base/csv.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/csv.cc.o.d"
  "/root/repo/src/base/logging.cc" "CMakeFiles/tdfe.dir/src/base/logging.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "CMakeFiles/tdfe.dir/src/base/rng.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/rng.cc.o.d"
  "/root/repo/src/base/serial.cc" "CMakeFiles/tdfe.dir/src/base/serial.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/serial.cc.o.d"
  "/root/repo/src/base/table.cc" "CMakeFiles/tdfe.dir/src/base/table.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/table.cc.o.d"
  "/root/repo/src/base/thread_pool.cc" "CMakeFiles/tdfe.dir/src/base/thread_pool.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/base/thread_pool.cc.o.d"
  "/root/repo/src/blastapp/domain.cc" "CMakeFiles/tdfe.dir/src/blastapp/domain.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/blastapp/domain.cc.o.d"
  "/root/repo/src/blastapp/runner.cc" "CMakeFiles/tdfe.dir/src/blastapp/runner.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/blastapp/runner.cc.o.d"
  "/root/repo/src/ckpt/checkpoint.cc" "CMakeFiles/tdfe.dir/src/ckpt/checkpoint.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/ckpt/checkpoint.cc.o.d"
  "/root/repo/src/clover2d/app.cc" "CMakeFiles/tdfe.dir/src/clover2d/app.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/clover2d/app.cc.o.d"
  "/root/repo/src/clover2d/solver.cc" "CMakeFiles/tdfe.dir/src/clover2d/solver.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/clover2d/solver.cc.o.d"
  "/root/repo/src/core/analysis.cc" "CMakeFiles/tdfe.dir/src/core/analysis.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/analysis.cc.o.d"
  "/root/repo/src/core/ar_model.cc" "CMakeFiles/tdfe.dir/src/core/ar_model.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/ar_model.cc.o.d"
  "/root/repo/src/core/changepoint.cc" "CMakeFiles/tdfe.dir/src/core/changepoint.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/changepoint.cc.o.d"
  "/root/repo/src/core/collector.cc" "CMakeFiles/tdfe.dir/src/core/collector.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/collector.cc.o.d"
  "/root/repo/src/core/early_stop.cc" "CMakeFiles/tdfe.dir/src/core/early_stop.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/early_stop.cc.o.d"
  "/root/repo/src/core/observed_series.cc" "CMakeFiles/tdfe.dir/src/core/observed_series.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/observed_series.cc.o.d"
  "/root/repo/src/core/predictor.cc" "CMakeFiles/tdfe.dir/src/core/predictor.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/predictor.cc.o.d"
  "/root/repo/src/core/region.cc" "CMakeFiles/tdfe.dir/src/core/region.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/region.cc.o.d"
  "/root/repo/src/core/td_api.cc" "CMakeFiles/tdfe.dir/src/core/td_api.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/td_api.cc.o.d"
  "/root/repo/src/core/threshold.cc" "CMakeFiles/tdfe.dir/src/core/threshold.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/threshold.cc.o.d"
  "/root/repo/src/core/tracker.cc" "CMakeFiles/tdfe.dir/src/core/tracker.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/tracker.cc.o.d"
  "/root/repo/src/core/trainer.cc" "CMakeFiles/tdfe.dir/src/core/trainer.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/core/trainer.cc.o.d"
  "/root/repo/src/euler3d/sedov.cc" "CMakeFiles/tdfe.dir/src/euler3d/sedov.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/euler3d/sedov.cc.o.d"
  "/root/repo/src/euler3d/solver.cc" "CMakeFiles/tdfe.dir/src/euler3d/solver.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/euler3d/solver.cc.o.d"
  "/root/repo/src/hydro/eos.cc" "CMakeFiles/tdfe.dir/src/hydro/eos.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/hydro/eos.cc.o.d"
  "/root/repo/src/hydro/flux.cc" "CMakeFiles/tdfe.dir/src/hydro/flux.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/hydro/flux.cc.o.d"
  "/root/repo/src/lagrangian/solver1d.cc" "CMakeFiles/tdfe.dir/src/lagrangian/solver1d.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/lagrangian/solver1d.cc.o.d"
  "/root/repo/src/par/faulty_comm.cc" "CMakeFiles/tdfe.dir/src/par/faulty_comm.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/par/faulty_comm.cc.o.d"
  "/root/repo/src/par/serial_comm.cc" "CMakeFiles/tdfe.dir/src/par/serial_comm.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/par/serial_comm.cc.o.d"
  "/root/repo/src/par/store_merge.cc" "CMakeFiles/tdfe.dir/src/par/store_merge.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/par/store_merge.cc.o.d"
  "/root/repo/src/par/thread_comm.cc" "CMakeFiles/tdfe.dir/src/par/thread_comm.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/par/thread_comm.cc.o.d"
  "/root/repo/src/postproc/ground_truth.cc" "CMakeFiles/tdfe.dir/src/postproc/ground_truth.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/postproc/ground_truth.cc.o.d"
  "/root/repo/src/postproc/offline_fit.cc" "CMakeFiles/tdfe.dir/src/postproc/offline_fit.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/postproc/offline_fit.cc.o.d"
  "/root/repo/src/postproc/trace.cc" "CMakeFiles/tdfe.dir/src/postproc/trace.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/postproc/trace.cc.o.d"
  "/root/repo/src/sph/cell_list.cc" "CMakeFiles/tdfe.dir/src/sph/cell_list.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/sph/cell_list.cc.o.d"
  "/root/repo/src/sph/gravity.cc" "CMakeFiles/tdfe.dir/src/sph/gravity.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/sph/gravity.cc.o.d"
  "/root/repo/src/sph/kernel.cc" "CMakeFiles/tdfe.dir/src/sph/kernel.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/sph/kernel.cc.o.d"
  "/root/repo/src/sph/polytrope.cc" "CMakeFiles/tdfe.dir/src/sph/polytrope.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/sph/polytrope.cc.o.d"
  "/root/repo/src/sph/sph_system.cc" "CMakeFiles/tdfe.dir/src/sph/sph_system.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/sph/sph_system.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "CMakeFiles/tdfe.dir/src/stats/matrix.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/matrix.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "CMakeFiles/tdfe.dir/src/stats/metrics.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/metrics.cc.o.d"
  "/root/repo/src/stats/minibatch.cc" "CMakeFiles/tdfe.dir/src/stats/minibatch.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/minibatch.cc.o.d"
  "/root/repo/src/stats/ols.cc" "CMakeFiles/tdfe.dir/src/stats/ols.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/ols.cc.o.d"
  "/root/repo/src/stats/rls.cc" "CMakeFiles/tdfe.dir/src/stats/rls.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/rls.cc.o.d"
  "/root/repo/src/stats/sgd.cc" "CMakeFiles/tdfe.dir/src/stats/sgd.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/sgd.cc.o.d"
  "/root/repo/src/stats/standardizer.cc" "CMakeFiles/tdfe.dir/src/stats/standardizer.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/stats/standardizer.cc.o.d"
  "/root/repo/src/store/codec.cc" "CMakeFiles/tdfe.dir/src/store/codec.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/codec.cc.o.d"
  "/root/repo/src/store/file.cc" "CMakeFiles/tdfe.dir/src/store/file.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/file.cc.o.d"
  "/root/repo/src/store/live.cc" "CMakeFiles/tdfe.dir/src/store/live.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/live.cc.o.d"
  "/root/repo/src/store/manifest.cc" "CMakeFiles/tdfe.dir/src/store/manifest.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/manifest.cc.o.d"
  "/root/repo/src/store/query.cc" "CMakeFiles/tdfe.dir/src/store/query.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/query.cc.o.d"
  "/root/repo/src/store/reader.cc" "CMakeFiles/tdfe.dir/src/store/reader.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/reader.cc.o.d"
  "/root/repo/src/store/writer.cc" "CMakeFiles/tdfe.dir/src/store/writer.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/store/writer.cc.o.d"
  "/root/repo/src/wdmerger/app.cc" "CMakeFiles/tdfe.dir/src/wdmerger/app.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/wdmerger/app.cc.o.d"
  "/root/repo/src/wdmerger/dtd.cc" "CMakeFiles/tdfe.dir/src/wdmerger/dtd.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/wdmerger/dtd.cc.o.d"
  "/root/repo/src/wdmerger/runner.cc" "CMakeFiles/tdfe.dir/src/wdmerger/runner.cc.o" "gcc" "CMakeFiles/tdfe.dir/src/wdmerger/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
