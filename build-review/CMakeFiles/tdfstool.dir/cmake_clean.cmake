file(REMOVE_RECURSE
  "CMakeFiles/tdfstool.dir/tools/tdfstool.cc.o"
  "CMakeFiles/tdfstool.dir/tools/tdfstool.cc.o.d"
  "tdfstool"
  "tdfstool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfstool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
