# Empty compiler generated dependencies file for tdfstool.
# This may be replaced when dependencies are built.
