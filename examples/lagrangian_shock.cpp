/**
 * @file
 * Third-substrate demo on the async pipeline: instrument the 1D
 * spherical Lagrangian (von Neumann-Richtmyer) solver with the same
 * break-point analysis the LULESH stand-in and clover2d use, running
 * the ingest asynchronously — td_region_end only snapshots the node
 * velocities and the mini-batch training digests on the thread pool
 * while the solver computes the next step. The extracted feature is
 * checked against the recorded probe peaks, and the exposed overhead
 * (what actually blocked the solver loop) is reported.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/cli.hh"
#include "core/region.hh"
#include "lagrangian/solver1d.hh"

using namespace tdfe;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    Lagrangian1Config config;
    config.zones = argc > 1 ? std::atoi(argv[1]) : 60;
    config.length = static_cast<double>(config.zones);
    const double stop_radius = 0.9 * config.length;

    // Dry run: total cycle count sizes the temporal window, probe
    // peaks double as ground truth for the break-point.
    LagrangianSolver1D probe(config);
    probe.depositCenterEnergy(1.0);
    std::vector<double> peak(
        static_cast<std::size_t>(config.zones) + 1, 0.0);
    double v_init = 0.0;
    long total = 0;
    while (probe.shockRadius() < stop_radius) {
        probe.advance();
        ++total;
        for (long l = 1; l <= config.zones; ++l) {
            auto &p = peak[static_cast<std::size_t>(l)];
            p = std::max(p, probe.velocityAt(l));
        }
        v_init = std::max(v_init, probe.velocityAt(1));
    }
    std::printf("full 1D blast run: %ld cycles to t = %.3f\n", total,
                probe.time());

    LagrangianSolver1D solver(config);
    solver.depositCenterEnergy(1.0);

    Region region("lagrangian_shock", &solver);
    // Async ingest: the digest of cycle k trains while the solver
    // runs cycle k+1; queries drain, so results are bitwise
    // identical to a synchronous run.
    region.setAsyncAnalyses(true);

    AnalysisConfig cfg;
    cfg.name = "lagrangian-breakpoint";
    cfg.provider = [](void *domain, long loc) {
        return static_cast<LagrangianSolver1D *>(domain)
            ->velocityAt(loc);
    };
    cfg.space = IterParam(1, std::min<long>(20, config.zones - 2), 1);
    cfg.time = IterParam(total / 20, (total * 3) / 5, 1);
    cfg.feature = FeatureKind::BreakpointRadius;
    cfg.threshold = 0.1 * v_init;
    cfg.searchEnd = config.zones;
    cfg.minLocation = 1;
    cfg.ar.axis = LagAxis::Space;
    cfg.ar.order = 3;
    cfg.ar.lag = std::max<long>(2, total / 150);
    cfg.ar.batchSize = 16;
    const std::size_t id = region.addAnalysis(std::move(cfg));

    while (solver.shockRadius() < stop_radius) {
        region.begin();
        solver.advance();
        region.end();
    }

    const CurveFitAnalysis &a = region.analysis(id);
    long truth = 0;
    for (long l = 1; l <= config.zones; ++l)
        if (peak[static_cast<std::size_t>(l)] >= 0.1 * v_init)
            truth = l;
    std::printf("mini-batch rounds: %zu, validation MSE %.2e\n",
                a.trainingRounds(), a.lastValidationMse());
    std::printf("break-point radius: extracted %ld, ground truth "
                "%ld\n",
                a.breakPoint().radius, truth);
    std::printf("exposed analysis overhead: %.3f ms over %ld cycles "
                "(%.2f us/cycle)\n",
                1e3 * region.overheadSeconds(), region.iteration(),
                1e6 * region.overheadSeconds() /
                    static_cast<double>(region.iteration()));
    finishObsOptions(obsCli);
    return 0;
}
