/**
 * @file
 * Crash-safe checkpoint/restart: long-running HPC jobs are routinely
 * killed at queue limits and resumed from application checkpoints.
 * The resilient harness does the whole loop: periodic CRC-framed
 * checkpoint generations written atomically (tmp + fsync + rename,
 * rotated keep-N), an injected mid-run "kill", and an auto-resume
 * supervisor that restores the newest valid generation and carries
 * on. The example verifies the paper-facing invariant: the crashed
 * and resumed run extracts the same feature over the same number of
 * iterations as an uninterrupted one, and — with --store — the
 * stitched feature store is record-identical too.
 *
 * Flags (beyond the shared --threads/--store family):
 *   --ckpt <prefix>       checkpoint path prefix
 *                         (default blast_region, cwd)
 *   --ckpt-every <n>      iterations between generations (default 5)
 *   --ckpt-keep <n>       generations kept (default 3)
 *   --ckpt-durability <p> none | flush | fsync
 *   --keep-ckpt           leave the generations + manifest on disk
 *                         (scripts/check_build.sh inspects them with
 *                         `tdfstool ckpt-info`)
 *   --tear-newest         tear the final pre-crash generation
 *                         mid-payload (FaultyFile) so the resume has
 *                         to fall back to the previous good one
 */

#include <cstdio>
#include <cstring>
#include <memory>

#include "base/cli.hh"
#include "blastapp/runner.hh"
#include "ckpt/checkpoint.hh"
#include "store/file.hh"
#include "store/reader.hh"

using namespace tdfe;
using namespace tdfe::blast;

namespace
{

/** Consume a boolean flag from argv (true when present). */
bool
stripFlag(int &argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) != 0)
            continue;
        for (int j = i; j + 1 < argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return true;
    }
    return false;
}

/** Shared run options for the reference and the resilient run. */
RunOptions
instrumentedOptions(long total_iters, const StoreCliOptions &store)
{
    RunOptions o;
    o.instrument = true;
    o.analysis.space = IterParam(1, 8, 1);
    o.analysis.time =
        IterParam(total_iters / 20, (total_iters * 2) / 5, 1);
    o.analysis.feature = FeatureKind::BreakpointRadius;
    o.analysis.threshold = 0.05;
    o.analysis.searchEnd = 12;
    o.analysis.minLocation = 1;
    o.analysis.ar.axis = LagAxis::Space;
    o.analysis.ar.order = 3;
    o.analysis.ar.lag = 2;
    o.analysis.ar.batchSize = 16;
    o.storeAsync = store.async;
    o.storeDurability = store.durability;
    o.storeMergePolicy = store.mergePolicy;
    o.storeLive = store.live;
    return o;
}

/** Record count of a finished store (0 when unreadable). */
std::size_t
recordCount(const std::string &path)
{
    std::string error;
    auto reader = FeatureStoreReader::open(path, &error);
    return reader ? reader->recordCount() : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const StoreCliOptions storeCli = applyStoreFlags(argc, argv);
    CkptCliOptions ckptCli = applyCkptFlags(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);
    const bool keep_ckpt = stripFlag(argc, argv, "--keep-ckpt");
    const bool tear_newest = stripFlag(argc, argv, "--tear-newest");
    if (ckptCli.path.empty())
        ckptCli.path = "blast_region";
    if (ckptCli.every <= 0)
        ckptCli.every = 5;

    BlastConfig config;
    config.size = 12;

    // Dry run to size the analysis windows, as in the other
    // examples.
    long total = 0;
    {
        const RunResult bare =
            runBlast(config, nullptr, RunOptions());
        total = bare.iterations;
    }

    // Reference: uninterrupted instrumented run.
    RunOptions ref_opts = instrumentedOptions(total, storeCli);
    if (!storeCli.path.empty())
        ref_opts.storePath = storeCli.path + ".reference";
    const RunResult ref = runBlast(config, nullptr, ref_opts);
    std::printf("uninterrupted: %ld iterations, radius %.0f\n",
                ref.iterations, ref.featureValue);

    // Crashed run: the supervisor checkpoints every --ckpt-every
    // iterations, the test seam kills the attempt halfway (no final
    // checkpoint, exactly like a SIGKILL), and the retry restores
    // the newest valid generation. --tear-newest additionally tears
    // the last pre-crash generation mid-payload, so the restore must
    // fall back to the previous good one — at the cost of replaying
    // a few more iterations, never of correctness.
    RunOptions res_opts = instrumentedOptions(total, storeCli);
    res_opts.storePath = storeCli.path; // empty: store disabled
    res_opts.ckptPath = ckptCli.path;
    res_opts.ckptEvery = ckptCli.every;
    res_opts.ckptKeep = static_cast<int>(ckptCli.keep);
    res_opts.ckptDurability = ckptCli.durability;
    res_opts.resumeAuto = ckptCli.resumeAuto; // forced on by retries
    res_opts.metricsEvery = obsCli.metricsEvery;
    res_opts.haltAfterIterations = total / 2;
    const std::uint64_t torn_gen = static_cast<std::uint64_t>(
        (total / 2 / ckptCli.every) * ckptCli.every);
    if (tear_newest) {
        res_opts.ckptWriteHook = [torn_gen](std::uint64_t iteration,
                                            ckpt::WriteOptions &w) {
            if (iteration != torn_gen)
                return;
            w.wrapFile = [](std::unique_ptr<store::StoreFile> f) {
                store::FaultPlan plan;
                plan.kind = store::FaultPlan::Kind::Crash;
                plan.atByte = 36 + 40; // mid-payload
                return std::unique_ptr<store::StoreFile>(
                    new store::FaultyFile(std::move(f), plan));
            };
        };
    }

    const RunResult res =
        runBlastResilient(config, nullptr, res_opts);
    std::printf("crashed at iteration %ld, resumed from %ld "
                "(%d restart%s, %ld generations written)\n",
                total / 2, res.resumedFromIteration, res.restarts,
                res.restarts == 1 ? "" : "s",
                res.checkpointsWritten);
    if (tear_newest)
        std::printf("torn generation %llu skipped: resume fell back "
                    "to an older valid one\n",
                    static_cast<unsigned long long>(torn_gen));
    std::printf("resumed: %ld iterations, radius %.0f\n",
                res.iterations, res.featureValue);

    bool identical = res.iterations == ref.iterations &&
                     res.featureValue == ref.featureValue &&
                     res.validationMse == ref.validationMse;
    if (tear_newest && res.resumedFromIteration >= 0)
        identical = identical &&
                    res.resumedFromIteration <
                        static_cast<long>(torn_gen);
    if (!storeCli.path.empty()) {
        const std::size_t ref_records =
            recordCount(storeCli.path + ".reference");
        const std::size_t res_records = recordCount(storeCli.path);
        std::printf("feature stores: reference %zu records, "
                    "stitched %zu records\n",
                    ref_records, res_records);
        identical = identical && ref_records == res_records &&
                    ref_records > 0;
    }
    std::printf("resumed run identical to uninterrupted run: %s\n",
                identical ? "yes" : "NO");

    if (!keep_ckpt) {
        for (const ckpt::Generation &g :
             ckpt::listGenerations(ckptCli.path))
            std::remove(g.path.c_str());
        std::remove((ckptCli.path + ".manifest").c_str());
    }
    finishObsOptions(obsCli);
    return identical ? 0 : 1;
}
