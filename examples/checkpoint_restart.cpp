/**
 * @file
 * Checkpoint/restart: long-running HPC jobs are routinely killed at
 * queue limits and resumed from application checkpoints. The td
 * region participates: Region::saveCheckpoint() captures the model,
 * optimizer, collected series, pending mini-batch, and early-stop
 * state; an identically-configured region restores it and continues
 * as if never interrupted. This example demonstrates the round trip
 * on the blast experiment and verifies that the resumed run extracts
 * the same feature as an uninterrupted one.
 */

#include <cstdio>
#include <fstream>
#include <memory>

#include "base/cli.hh"
#include "blastapp/domain.hh"
#include "core/region.hh"
#include "par/store_merge.hh"
#include "store/writer.hh"

using namespace tdfe;
using namespace tdfe::blast;

namespace
{

AnalysisConfig
analysisFor(long total_iters)
{
    AnalysisConfig ac;
    ac.provider = [](void *d, long loc) {
        return static_cast<Domain *>(d)->xd(loc);
    };
    ac.space = IterParam(1, 8, 1);
    ac.time = IterParam(total_iters / 20, (total_iters * 2) / 5, 1);
    ac.feature = FeatureKind::BreakpointRadius;
    ac.searchEnd = 24;
    ac.minLocation = 1;
    ac.ar.axis = LagAxis::Space;
    ac.ar.order = 3;
    ac.ar.lag = 2;
    ac.ar.batchSize = 16;
    return ac;
}

/** One blast iteration with the region attached. */
void
iterate(Domain &domain, Region &region)
{
    region.begin();
    TimeIncrement(domain);
    LagrangeLeapFrog(domain);
    domain.gatherProbes();
    region.end();
}

/**
 * Attach a feature store to @p region when --store was given
 * (interrupted halves get distinct suffixes, merged at the end).
 * Delegates to the shared rank-store helper with a null comm.
 */
std::unique_ptr<FeatureStoreWriter>
attachStore(Region &region, const StoreCliOptions &cli,
            const std::string &suffix)
{
    if (cli.path.empty())
        return nullptr;
    StoreOptions options;
    options.async = cli.async;
    options.durability =
        store::parseDurabilityPolicy(cli.durability);
    // analysisFor() uses order 3 -> 4 coefficient columns.
    return attachRankStore(region, cli.path + suffix, 3 + 1,
                           options, nullptr);
}

/** Detach and close an attached store (no-op without --store). */
void
closeStore(Region &region, std::unique_ptr<FeatureStoreWriter> store)
{
    if (!store)
        return;
    const std::string path = store->path();
    const std::size_t records = store->recordCount();
    const std::size_t bytes =
        finishRankStore(region, std::move(store), path, nullptr);
    std::printf("feature store: %s (%zu records, %zu bytes)\n",
                path.c_str(), records, bytes);
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const StoreCliOptions storeCli = applyStoreFlags(argc, argv);

    BlastConfig config;
    config.size = 24;

    // Dry run to size the windows, as in the other examples.
    long total = 0;
    {
        Domain probe(config);
        while (!probe.finished()) {
            TimeIncrement(probe);
            LagrangeLeapFrog(probe);
            ++total;
        }
    }

    // Reference: uninterrupted instrumented run.
    double ref_threshold = 0.0;
    long ref_radius = 0;
    {
        Domain domain(config);
        Region region("reference", &domain);
        region.addAnalysis(analysisFor(total));
        auto store = attachStore(region, storeCli, "");
        while (!domain.finished())
            iterate(domain, region);
        closeStore(region, std::move(store));
        ref_threshold = 0.05 * domain.initialVelocity();
        region.analysis(0).setThreshold(ref_threshold);
        ref_radius = region.analysis(0).breakPoint().radius;
        std::printf("uninterrupted: %ld iterations, radius %ld\n",
                    domain.cycle(), ref_radius);
    }

    // Interrupted run: stop at 50%, checkpoint to disk, "lose" the
    // process, restore and finish.
    const char *ckpt_path = "blast_region.ckpt";
    {
        Domain domain(config);
        Region region("before-kill", &domain);
        region.addAnalysis(analysisFor(total));
        auto store = attachStore(region, storeCli, ".part1");
        for (long i = 0; i < total / 2 && !domain.finished(); ++i)
            iterate(domain, region);
        closeStore(region, std::move(store));

        std::ofstream out(ckpt_path, std::ios::binary);
        region.saveCheckpoint(out);
        std::printf("checkpointed at iteration %ld (%zu bytes)\n",
                    domain.cycle(),
                    static_cast<std::size_t>(out.tellp()));
        // NOTE: the *simulation* would checkpoint its own state
        // here too; this example re-runs the first half instead,
        // since the region only needs its own state back.
    }
    {
        Domain domain(config);
        // Replay the simulation half without the region (stands in
        // for the solver's own checkpoint restore).
        for (long i = 0; i < total / 2 && !domain.finished(); ++i) {
            TimeIncrement(domain);
            LagrangeLeapFrog(domain);
            domain.gatherProbes();
        }

        Region region("after-restart", &domain);
        region.addAnalysis(analysisFor(total));
        std::ifstream in(ckpt_path, std::ios::binary);
        region.loadCheckpoint(in);
        std::printf("restored at region iteration %ld\n",
                    region.iteration());

        auto store = attachStore(region, storeCli, ".part2");
        while (!domain.finished())
            iterate(domain, region);
        closeStore(region, std::move(store));
        region.analysis(0).setThreshold(ref_threshold);
        const long radius = region.analysis(0).breakPoint().radius;
        std::printf("resumed: %ld iterations, radius %ld\n",
                    domain.cycle(), radius);
        std::printf("feature identical to uninterrupted run: %s\n",
                    radius == ref_radius ? "yes" : "NO");
    }
    if (!storeCli.path.empty()) {
        // Stitch the interrupted run's halves into one store, the
        // same rank-order merge the decomposed runners use. The
        // result covers the same iterations as the uninterrupted
        // store (inspect both with tdfstool).
        const std::string merged = storeCli.path + ".resumed";
        const std::size_t records = mergeRankStores(
            {storeCli.path + ".part1", storeCli.path + ".part2"},
            merged);
        std::printf("merged resumed-run store: %s (%zu records)\n",
                    merged.c_str(), records);
        std::remove((storeCli.path + ".part1").c_str());
        std::remove((storeCli.path + ".part2").c_str());
    }
    std::remove(ckpt_path);
    return 0;
}
