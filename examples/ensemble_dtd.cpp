/**
 * @file
 * Population synthesis with in-situ extraction: the paper argues
 * its delay times are the raw material for reconstructing
 * delay-time distributions (DTDs) from merger-based progenitor
 * systems (Sec. V, citing Totani et al. and Maoz et al.). This
 * example runs an ensemble of binary white-dwarf mergers whose
 * initial separations sample a flat-in-log population, extracts a
 * detonation delay time from each run in-situ, and assembles the
 * DTD.
 *
 * Physics check built in: for gravitational-wave-like orbital
 * decay, the merger time scales as a strong power of the initial
 * separation (t ~ a^4 for pure GW; our drag law gives its own
 * exponent), so a flat-in-log-a population yields a falling
 * power-law DTD, qualitatively the observed t^-1 law. The example
 * fits the empirical exponent of t(a) from the ensemble and prints
 * the implied DTD slope next to the histogram.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/cli.hh"
#include "base/logging.hh"
#include "wdmerger/dtd.hh"
#include "wdmerger/runner.hh"

using namespace tdfe;
using namespace tdfe::wd;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    const int count = argc > 1 ? std::atoi(argv[1]) : 8;
    const int resolution = argc > 2 ? std::atoi(argv[2]) : 6;
    setLogQuiet(true);

    // Flat-in-log separations between a_min and a_max.
    const double a_min = 1.8;
    const double a_max = 3.0;

    std::printf("ensemble of %d mergers, resolution %d, "
                "a0 in [%.1f, %.1f] (flat in log a)\n\n",
                count, resolution, a_min, a_max);

    DelayTimeDistribution dtd(0.0, 120.0, 12);
    std::vector<double> log_a, log_t;

    std::printf("%-8s %-12s %-12s %-10s\n", "a0", "delay (mass)",
                "detonation", "stopped");
    for (int k = 0; k < count; ++k) {
        const double frac =
            count > 1 ? static_cast<double>(k) /
                            static_cast<double>(count - 1)
                      : 0.5;
        const double a0 =
            a_min * std::pow(a_max / a_min, frac);

        WdMergerConfig cfg;
        cfg.resolution = resolution;
        cfg.separation = a0;
        // Wide binaries inspiral as a strong power of a0 (t ~ a^4
        // for our drag law); size the run to each progenitor so the
        // detonation always lands inside the window. NOTE: early
        // termination must NOT be used here — the model converges
        // on the quiet inspiral long before the feature exists, so
        // an early-stopped run would hand back a curve with no
        // detonation in it. The protocol is: capture the inflection
        // first, then stop.
        cfg.tEnd = 40.0 * std::pow(a0 / 1.8, 4.0) + 40.0;

        WdRunOptions opt;
        opt.instrument = true;
        opt.trainFraction = 0.6;
        const WdRunResult r = runWdMerger(cfg, nullptr, opt);

        // The bound-mass diagnostic was the paper's most reliable
        // delay source (Table VI).
        const double delay =
            r.delayTime[static_cast<int>(DiagVar::Mass)];
        std::printf("%-8.2f %-12.1f %-12.1f %-10s\n", a0, delay,
                    r.detonationTime,
                    r.stoppedEarly ? "early" : "full");
        if (r.detonationTime > 0.0 && delay > 0.0) {
            dtd.add({a0, delay, "Mass"});
            log_a.push_back(std::log(a0));
            log_t.push_back(std::log(delay));
        }
    }

    // Empirical t(a) power law: least-squares slope in log space.
    double slope = 0.0;
    if (log_a.size() >= 3) {
        double sa = 0.0, st = 0.0, saa = 0.0, sat = 0.0;
        const double n = static_cast<double>(log_a.size());
        for (std::size_t i = 0; i < log_a.size(); ++i) {
            sa += log_a[i];
            st += log_t[i];
            saa += log_a[i] * log_a[i];
            sat += log_a[i] * log_t[i];
        }
        slope = (n * sat - sa * st) / (n * saa - sa * sa);
    }

    std::printf("\nDTD histogram (bin centre: count):\n");
    const auto bins = dtd.histogram();
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b] > 0) {
            std::printf("  %6.1f: %zu %s\n", dtd.binCentre(b),
                        bins[b],
                        std::string(bins[b], '#').c_str());
        }
    }
    std::printf("\nmean delay %.1f, range %.1f..%.1f over %zu "
                "mergers\n",
                dtd.mean(), dtd.min(), dtd.max(), dtd.count());
    std::printf("empirical merger-time scaling: t ~ a^%.1f\n", slope);
    if (slope > 0.0) {
        // Flat-in-log-a population: dN/dt = (dN/dln a)(dln a/dt)
        // ~ 1/t, independent of the exponent — print the chain.
        std::printf("flat-in-log-a population + t ~ a^%.1f "
                    "=> DTD dN/dt ~ t^-1 (the observed SNe Ia "
                    "law)\n",
                    slope);
    }
    finishObsOptions(obsCli);
    return 0;
}
