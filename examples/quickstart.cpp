/**
 * @file
 * Quickstart: attach an in-situ auto-regression analysis to a toy
 * iterative "simulation" (a damped travelling wave), train it while
 * the loop runs, and extract a threshold feature — everything the
 * library does, in fifty lines.
 */

#include <cmath>
#include <cstdio>

#include "base/cli.hh"
#include "core/region.hh"

using namespace tdfe;

/** A fake simulation domain: an attenuating wave over 20 sites. */
struct ToySim
{
    long step = 0;

    double
    value(long site) const
    {
        const double ramp = 1.0 - std::exp(-step / 30.0);
        return 5.0 * std::pow(0.75, site - 1) * ramp;
    }
};

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    // --metrics-out / --trace-out / --metrics-every work here like
    // everywhere else (see src/obs): every layer under begin()/end()
    // is instrumented, the flags only turn recording on.
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    ToySim sim;

    // 1. A region bound to the simulation domain.
    Region region("quickstart", &sim);

    // 2. One curve-fitting analysis: sample sites 1..8 every
    //    iteration from step 10 to 150, fit a spatial AR model, and
    //    find the break-point where the wave drops below 0.4.
    AnalysisConfig cfg;
    cfg.provider = [](void *domain, long site) {
        return static_cast<ToySim *>(domain)->value(site);
    };
    cfg.space = IterParam(1, 8, 1);
    cfg.time = IterParam(10, 150, 1);
    cfg.feature = FeatureKind::BreakpointRadius;
    cfg.threshold = 0.4;
    cfg.searchEnd = 20;
    cfg.minLocation = 1;
    cfg.ar.axis = LagAxis::Space;
    cfg.ar.order = 2;
    cfg.ar.batchSize = 16;
    const std::size_t id = region.addAnalysis(std::move(cfg));

    // 3. The simulation loop, bracketed by begin()/end().
    for (sim.step = 0; sim.step <= 150; ++sim.step) {
        region.begin();
        // ... the real solver kernels would run here ...
        region.end();
    }

    // 4. Query the results.
    const CurveFitAnalysis &a = region.analysis(id);
    std::printf("trained on %zu mini-batches, validation MSE %.2e\n",
                a.trainingRounds(), a.lastValidationMse());
    std::printf("break-point radius (threshold 0.4): %ld\n",
                a.breakPoint().radius);
    std::printf("ground truth: 5 * 0.75^(r-1) >= 0.4 up to r = %d\n",
                9);
    std::printf("in-situ memory footprint: %zu bytes\n",
                a.observed().memoryBytes());
    finishObsOptions(obsCli);
    return 0;
}
