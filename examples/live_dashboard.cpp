/**
 * @file
 * Live dashboard: a writer thread streams extracted features into a
 * store with live publication on, while the main thread follows it
 * through a LiveStoreReader — the in-situ monitoring loop the live
 * serving layer exists for. Each time the view advances, the
 * dashboard reprints: generation, lifecycle state, sealed records,
 * and a filtered aggregate (min/mean MSE) computed by the regular
 * query engine *against a pinned snapshot* — demonstrating that
 * zone-map pushdown runs unchanged over a store mid-write.
 *
 * The tail is checked, not just displayed: every record the tail
 * delivers is compared against what the writer appended (same
 * iteration sequence, exactly once, in order), and the demo exits
 * nonzero on any divergence — so it doubles as an end-to-end smoke
 * of the live path (scripts/check_build.sh runs it).
 *
 *   live_dashboard [--records n] [--block n] [--store path]
 *                  [--delay-us n] [--threads n]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "base/cli.hh"
#include "store/live.hh"
#include "store/manifest.hh"
#include "store/query.hh"
#include "store/writer.hh"

using namespace tdfe;

int
main(int argc, char **argv)
{
    ArgParser args("Follow a live feature store while it is written "
                   "(snapshot-isolated tail; see store/live.hh)");
    addThreadsOption(args);
    addObsOptions(args);
    args.addInt("records", 4096, "records the writer appends");
    args.addInt("block", 256, "records per sealed block");
    args.addString("store", "live_dashboard.tdfs",
                   "store path (the \".live\" sidecar is derived)");
    args.addInt("delay-us", 50,
                "microseconds between appends (writer pacing)");
    args.parse(argc, argv);
    applyThreadsOption(args);
    const ObsCliOptions obsCli = obsOptions(args);
    applyObsOptions(obsCli);

    const long total = args.getInt("records");
    const std::size_t block =
        static_cast<std::size_t>(args.getInt("block"));
    const std::string path = args.getString("store");
    const long delay_us = args.getInt("delay-us");
    constexpr std::size_t n_coeffs = 3;

    // Writer side: synthetic feature records shaped like the blast
    // harness's (decaying MSE, advancing wavefront), published live
    // after every sealed block.
    std::atomic<bool> writer_ok{true};
    std::thread writer([&] {
        StoreOptions options;
        options.blockCapacity = block;
        options.live = true;
        FeatureStoreWriter w(path, StoreSchema{n_coeffs}, options);
        FeatureRecord rec;
        rec.coeffs.resize(n_coeffs);
        for (long i = 0; i < total; ++i) {
            rec.iteration = i;
            rec.analysis = 0;
            rec.stop = false;
            rec.wallTime = 1e-3 * static_cast<double>(i);
            rec.wavefront = 0.25 * static_cast<double>(i);
            rec.predicted = std::sin(0.01 * static_cast<double>(i));
            rec.mse = 1.0 / (1.0 + static_cast<double>(i));
            for (std::size_t k = 0; k < n_coeffs; ++k)
                rec.coeffs[k] =
                    static_cast<double>(i + static_cast<long>(k));
            if (!w.append(rec)) {
                writer_ok.store(false);
                return;
            }
            if (delay_us > 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(delay_us));
        }
        w.finish();
        writer_ok.store(writer_ok.load() && w.ok() && w.liveOk());
    });

    // Reader side: tail the store as it grows. The stall deadline
    // is generous — the writer above cannot legitimately go quiet.
    LiveViewOptions view_options;
    view_options.stallDeadlineSeconds = 30.0;
    LiveStoreReader live(path, view_options);
    TailCursor tail(live);

    FeatureRecord rec;
    long consumed = 0;
    long bad_order = 0;
    std::uint64_t shown_generation = 0;
    while (!tail.done()) {
        if (tail.next(rec)) {
            // Exactly-once, in-order delivery check.
            if (rec.iteration != consumed)
                ++bad_order;
            ++consumed;
            continue;
        }
        if (live.generation() != shown_generation &&
            live.attached()) {
            shown_generation = live.generation();
            const StoreView view = live.view();
            // The regular query engine over a pinned mid-write
            // snapshot: converged records only (MSE under 1%).
            EventFilter converged;
            converged.where({metricColumnIndex("mse"), PredOp::Lt,
                             0.01});
            QueryCursor q(view.reader(), converged);
            FeatureRecord m;
            long hits = 0;
            double mse_min = 1.0;
            while (q.next(m)) {
                ++hits;
                mse_min = std::min(mse_min, m.mse);
            }
            std::printf("gen %-4llu %-11s %6zu records sealed | "
                        "%5ld converged (mse<0.01, min %.2e) | "
                        "%zu/%zu blocks decoded\n",
                        static_cast<unsigned long long>(
                            view.generation()),
                        liveStateName(live.state()),
                        view.recordCount(), hits, mse_min,
                        view.reader().blocksDecoded(),
                        view.blockCount());
        }
        live.waitForAdvance(5.0);
    }
    writer.join();

    const bool tail_complete = consumed == total && bad_order == 0;
    std::printf("tail done: %ld/%ld records, state %s, "
                "%llu generations, %llu refresh rejects%s\n",
                consumed, total, liveStateName(live.state()),
                static_cast<unsigned long long>(live.generation()),
                static_cast<unsigned long long>(
                    live.refreshRejects()),
                tail_complete ? "" : "  [MISMATCH]");
    if (!writer_ok.load()) {
        std::fprintf(stderr, "live_dashboard: writer degraded\n");
        return 1;
    }
    if (!tail_complete || live.state() != LiveState::Final) {
        std::fprintf(stderr,
                     "live_dashboard: tail diverged from the "
                     "written stream (%ld consumed, %ld expected, "
                     "%ld out of order)\n",
                     consumed, total, bad_order);
        return 1;
    }
    std::remove(path.c_str());
    std::remove(store::manifestPathFor(path).c_str());
    finishObsOptions(obsCli);
    return 0;
}
