/**
 * @file
 * Material-deformation analysis: the paper's Fig. 2 integration,
 * nearly verbatim, against this repository's LULESH-shaped blast
 * app. Uses the C API (`td_*` functions) exactly as the paper's
 * code listing does, including the provider reading locDom->xd(loc).
 */

#include <cstdio>
#include <cstdlib>

#include "base/cli.hh"
#include "blastapp/domain.hh"
#include "core/td_api.h"

using namespace tdfe::blast;

// Paper Fig. 2, lines 1-5.
double
td_var_provider(void *loc_dom, int loc)
{
    Domain *dom = static_cast<Domain *>(loc_dom);
    double v = dom->xd(loc);
    return v;
}

int
main(int argc, char **argv)
{
    tdfe::applyThreadsFlag(argc, argv);
    // Telemetry through the C API: --metrics-out/--trace-out parse
    // here, but enable/export go through td_metrics_* / td_trace_*
    // exactly as a C simulation would call them.
    const tdfe::ObsCliOptions obsCli =
        tdfe::applyObsFlags(argc, argv);
    if (obsCli.enabled())
        td_metrics_enable(1);
    if (!obsCli.traceOut.empty())
        td_trace_enable(1);

    BlastConfig config;
    config.size = argc > 1 ? std::atoi(argv[1]) : 24;

    Domain *locDom = new Domain(config);

    // init td_region (paper Fig. 2 lines 10-20).
    td_region_t *lulesh_region = td_region_init("", locDom);
    td_iter_param_t *lulesh_loc = td_iter_param_init(1, 10, 1);
    td_iter_param_t *lulesh_iter = td_iter_param_init(10, 80, 1);
    int method = Curve_Fitting;
    double threshold = 0.01; // absolute velocity threshold
    int if_simulation_will_terminate = 0;

    td_ar_options_t opts;
    td_ar_options_default(&opts);
    opts.order = 3;
    opts.lag = 8;
    opts.search_end = config.size;
    opts.min_location = 1;
    int analysis = td_region_add_analysis_ex(
        lulesh_region, td_var_provider, lulesh_loc, method,
        lulesh_iter, threshold, if_simulation_will_terminate, &opts);

    // The main loop (paper Fig. 2 lines 22-29).
    while (!locDom->finished()) {
        td_region_begin(lulesh_region);

        TimeIncrement(*locDom);   // time-step update
        LagrangeLeapFrog(*locDom); // main computation

        locDom->gatherProbes();
        td_region_end(lulesh_region);
    }

    std::printf("simulation finished after %ld iterations "
                "(t = %.3f)\n",
                locDom->cycle(), locDom->time());
    std::printf("initial blast velocity: %.4f\n",
                locDom->initialVelocity());
    std::printf("model converged: %s (iteration %ld)\n",
                td_region_analysis_converged(lulesh_region, analysis)
                    ? "yes"
                    : "no",
                td_region_converged_iteration(lulesh_region,
                                              analysis));
    std::printf("material break-point radius at threshold %.3f: "
                "%.0f of %d\n",
                threshold,
                td_region_feature(lulesh_region, analysis),
                config.size);
    std::printf("in-situ overhead: %.4f s\n",
                td_region_overhead_seconds(lulesh_region));

    td_iter_param_destroy(lulesh_loc);
    td_iter_param_destroy(lulesh_iter);
    td_region_destroy(lulesh_region);
    delete locDom;
    if (!obsCli.metricsOut.empty() &&
        td_metrics_write(obsCli.metricsOut.c_str()) != 0)
        std::printf("metrics write failed: %s\n",
                    obsCli.metricsOut.c_str());
    if (!obsCli.traceOut.empty() &&
        td_trace_export(obsCli.traceOut.c_str()) != 0)
        std::printf("trace export failed: %s\n",
                    obsCli.traceOut.c_str());
    return 0;
}
