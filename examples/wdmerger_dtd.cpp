/**
 * @file
 * White-dwarf merger delay-time extraction: runs the SPH binary
 * merger with four in-situ analyses (temperature, angular momentum,
 * mass, energy), extracts a delay time from each, and combines a
 * small sweep of initial separations into a delay-time distribution
 * (DTD) — the paper's Sec. V application.
 */

#include <cstdio>
#include <vector>

#include "base/cli.hh"
#include "postproc/ground_truth.hh"
#include "wdmerger/dtd.hh"
#include "wdmerger/runner.hh"

using namespace tdfe;
using namespace tdfe::wd;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const StoreCliOptions store = applyStoreFlags(argc, argv);
    const CkptCliOptions ckpt = applyCkptFlags(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    const int resolution = argc > 1 ? std::atoi(argv[1]) : 8;

    // One instrumented run: delay time per diagnostic. With
    // --store <path> the four analyses' per-dump features land in a
    // trace store (--store-async flushes on the pool).
    WdMergerConfig config;
    config.resolution = resolution;
    WdRunOptions options;
    options.instrument = true;
    options.trainFraction = 0.25;
    options.storePath = store.path;
    options.storeAsync = store.async;
    options.storeDurability = store.durability;
    options.storeMergePolicy = store.mergePolicy;
    options.storeKeepParts = store.keepParts;
    options.storeLive = store.live;
    // --ckpt <prefix> routes the instrumented run through the
    // resilient supervisor: crash-safe generations every
    // --ckpt-every dumps, auto-resume from the newest valid one.
    options.ckptPath = ckpt.path;
    options.ckptEvery = ckpt.every;
    options.ckptKeep = static_cast<int>(ckpt.keep);
    options.ckptDurability = ckpt.durability;
    options.resumeAuto = ckpt.resumeAuto;
    options.metricsEvery = obsCli.metricsEvery;

    std::printf("running wdmerger at resolution %d...\n",
                resolution);
    const WdRunResult r =
        ckpt.path.empty()
            ? runWdMerger(config, nullptr, options)
            : runWdMergerResilient(config, nullptr, options);
    if (!ckpt.path.empty()) {
        std::printf("checkpoints: %ld generations under %s\n",
                    r.checkpointsWritten, ckpt.path.c_str());
        if (r.resumed)
            std::printf("resumed from checkpoint at dump %ld\n",
                        r.resumedFromIteration);
    }
    if (!store.path.empty()) {
        std::printf("feature store: %s (%zu bytes)\n",
                    store.path.c_str(), r.storeBytes);
    }

    std::printf("merger at t = %.2f, detonation at t = %.2f\n",
                r.mergeTime, r.detonationTime);
    for (int v = 0; v < numDiagVars; ++v) {
        const double truth =
            truthDelayTime(r.history[v], config.dumpInterval, 5);
        std::printf("  %-12s delay time: extracted %.1f, "
                    "ground truth %.1f\n",
                    diagName(static_cast<DiagVar>(v)),
                    r.delayTime[v], truth);
    }

    // A small DTD: sweep initial separations; wider binaries take
    // longer to merge, shifting the delay time (the paper's
    // progenitor-scenario connection).
    std::printf("\ndelay-time distribution over initial "
                "separations:\n");
    DelayTimeDistribution dtd(0.0, 100.0, 10);
    for (const double sep : {2.0, 2.2, 2.4}) {
        WdMergerConfig c = config;
        c.separation = sep;
        WdRunOptions bare;
        const WdRunResult s = runWdMerger(c, nullptr, bare);
        std::printf("  a0 = %.1f -> detonation delay %.1f\n", sep,
                    s.detonationTime);
        dtd.add({sep, s.detonationTime, "detonation"});
    }
    const auto bins = dtd.histogram();
    std::printf("DTD histogram (bin centre: count):\n");
    for (std::size_t b = 0; b < bins.size(); ++b)
        if (bins[b] > 0)
            std::printf("  %5.1f: %zu\n", dtd.binCentre(b), bins[b]);
    std::printf("mean delay time: %.1f (range %.1f..%.1f)\n",
                dtd.mean(), dtd.min(), dtd.max());
    finishObsOptions(obsCli);
    return 0;
}
