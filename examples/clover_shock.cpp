/**
 * @file
 * Second-substrate demo: attach the same in-situ auto-regression
 * analysis used on the LULESH stand-in to a structurally different
 * hydro code — the CloverLeaf-style 2D staggered Lagrangian-remap
 * solver. The paper's integration pattern (Fig. 2) is unchanged:
 * a provider reading one scalar per location, begin()/end() around
 * the solver kernels, and a threshold break-point query at the end.
 *
 * This demonstrates the library's portability claim: nothing in the
 * analysis knows whether the substrate is 3D Godunov, 2D staggered
 * remap, or SPH — only the provider changes.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "base/cli.hh"
#include "clover2d/app.hh"
#include "core/region.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "par/store_merge.hh"

using namespace tdfe;
using namespace tdfe::clover;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const StoreCliOptions storeCli = applyStoreFlags(argc, argv);
    // --metrics-out <file> snapshots every counter at exit,
    // --trace-out <file> records spans for Perfetto, and
    // --metrics-every <n> prints a heartbeat line from the loop.
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    CloverAppConfig config;
    config.size = argc > 1 ? std::atoi(argv[1]) : 48;
    config.blastEnergy = 2.0;

    CloverField field(config);

    // Probe the first pass to size the temporal window, exactly as
    // the blast harness does: a cheap dry run caps the iteration
    // budget.
    CloverField probe(config);
    long total = 0;
    while (!probe.finished()) {
        Timestep(probe);
        HydroCycle(probe);
        ++total;
    }
    std::printf("full 2D blast run: %ld cycles to t = %.2f\n", total,
                probe.time());

    Region region("clover_shock", &field);
    // Pipelined ingest: end() snapshots the probe line and the
    // training digest overlaps the next hydro cycle on the pool.
    // The relaxed stop query composes with it: polling shouldStop()
    // every cycle no longer drains the in-flight digest, so the
    // overlap survives the poll (the decision is at most one cycle
    // stale — irrelevant here, the analysis never requests a stop).
    region.setAsyncAnalyses(true);
    region.setRelaxedStopQuery(true);
    AnalysisConfig cfg;
    cfg.name = "clover-breakpoint";
    cfg.provider = [](void *domain, long loc) {
        return static_cast<CloverField *>(domain)->fieldAt(loc);
    };
    cfg.space = IterParam(1, 20, 1);
    cfg.time = IterParam(total / 20, (total * 3) / 5, 1);
    cfg.feature = FeatureKind::BreakpointRadius;
    cfg.searchEnd = config.size;
    cfg.minLocation = 1;
    cfg.ar.axis = LagAxis::Space;
    cfg.ar.order = 3;
    cfg.ar.lag = std::max<long>(2, total / 150);
    cfg.ar.batchSize = 16;
    const std::size_t order = cfg.ar.order;
    const std::size_t id = region.addAnalysis(std::move(cfg));

    // --store <path> persists every iteration's extracted features
    // (wave front, prediction, fit coefficients, MSE) to a trace
    // store; --store-async flushes its blocks on the thread pool,
    // --store-durability picks when sealed blocks hit the disk.
    std::unique_ptr<FeatureStoreWriter> store;
    if (!storeCli.path.empty()) {
        StoreOptions storeOptions;
        storeOptions.async = storeCli.async;
        storeOptions.live = storeCli.live;
        storeOptions.durability =
            store::parseDurabilityPolicy(storeCli.durability);
        store = attachRankStore(region, storeCli.path, order + 1,
                                storeOptions, nullptr);
    }

    // The instrumented run; probe peaks double as ground truth.
    std::vector<double> peak(static_cast<std::size_t>(config.size),
                             0.0);
    obs::Heartbeat heartbeat(
        static_cast<std::uint64_t>(obsCli.metricsEvery));
    std::uint64_t cycle = 0;
    while (!field.finished()) {
        region.begin();
        {
            static obs::Counter steps("solver.steps_total");
            obs::SpanTimer step("solver.step", "solver");
            Timestep(field);
            HydroCycle(field);
            steps.add();
        }
        region.end();
        heartbeat.tick(++cycle);
        if (region.shouldStop()) // relaxed: no drain, no stall
            break;
        field.gatherProbes();
        for (long loc = 1; loc <= field.probeCount(); ++loc) {
            auto &p = peak[static_cast<std::size_t>(loc - 1)];
            p = std::max(p, field.fieldAt(loc));
        }
    }

    CurveFitAnalysis &a = region.analysis(id);
    std::printf("mini-batch rounds: %zu, validation MSE %.2e\n",
                a.trainingRounds(), a.lastValidationMse());

    if (store) {
        // analysis(id) above drained the pipeline, so every record
        // is appended; close the store before the final queries.
        region.setFeatureStore(nullptr);
        const std::size_t bytes = store->finish();
        std::printf("feature store: %s (%zu records, %zu bytes, "
                    "exposed %.3f ms)\n",
                    storeCli.path.c_str(), store->recordCount(),
                    bytes, 1e3 * store->exposedSeconds());
    }

    // Threshold sweep in the style of the paper's Table II. The 2D
    // cylindrical blast attenuates much more slowly (~r^-1/2) than
    // the 3D one, so low thresholds sit below anything the wave
    // reaches inside the grid and the extraction clamps to the
    // boundary — the same behaviour as the paper's -16.67% rows.
    // Once the threshold crosses into the observed/attenuated
    // range, extraction matches the ground truth exactly.
    std::printf("%-14s %-12s %-12s\n", "threshold(%)", "extracted",
                "ground-truth");
    for (const double pct : {2.0, 5.0, 10.0, 20.0, 40.0}) {
        const double thr =
            0.01 * pct * field.initialVelocity();
        a.setThreshold(thr);
        const long extracted = a.breakPoint().radius;
        long truth_radius = 0;
        for (long loc = 1; loc <= field.probeCount(); ++loc)
            if (peak[static_cast<std::size_t>(loc - 1)] >= thr)
                truth_radius = loc;
        std::printf("%-14.1f %-12ld %-12ld\n", pct, extracted,
                    truth_radius);
    }
    finishObsOptions(obsCli);
    return 0;
}
