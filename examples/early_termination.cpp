/**
 * @file
 * Early termination: the same blast experiment run to completion
 * and with the analysis allowed to stop the simulation once its
 * model converges — the paper's headline cost saving.
 */

#include <cstdio>

#include "base/cli.hh"
#include "blastapp/runner.hh"

using namespace tdfe;
using namespace tdfe::blast;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const StoreCliOptions store = applyStoreFlags(argc, argv);
    const CkptCliOptions ckpt = applyCkptFlags(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    BlastConfig config;
    config.size = argc > 1 ? std::atoi(argv[1]) : 24;

    // Full run, recording the trace for reference.
    RunOptions full;
    full.recordTrace = true;
    const RunResult reference = runBlast(config, nullptr, full);
    std::printf("full run: %ld iterations, %.3f s\n",
                reference.iterations, reference.seconds);

    // Early-terminated run: stop once the model is trained. The
    // ingest runs on the async pipeline with the relaxed stop
    // query: the per-iteration shouldStop() poll reports the last
    // published decision instead of draining the in-flight digest,
    // so the analysis keeps overlapping the solver the whole run
    // and the stop fires at most one iteration after the strict
    // (drain-on-query) protocol would have fired it. Drop
    // relaxedStop to get the bitwise-identical strict behaviour.
    RunOptions stop;
    stop.instrument = true;
    stop.honorStop = true;
    stop.asyncAnalyses = true;
    stop.relaxedStop = true;
    stop.analysis.space = IterParam(1, 10, 1);
    stop.analysis.time =
        IterParam(reference.iterations / 20,
                  (reference.iterations * 3) / 5, 1);
    stop.analysis.feature = FeatureKind::BreakpointRadius;
    stop.analysis.threshold = 0.05 * reference.initialVelocity;
    stop.analysis.searchEnd = config.size;
    stop.analysis.minLocation = 1;
    stop.analysis.stopWhenConverged = true;
    stop.analysis.ar.axis = LagAxis::Space;
    stop.analysis.ar.order = 3;
    stop.analysis.ar.lag =
        std::max<long>(1, reference.iterations / 20);
    stop.analysis.ar.convergeTol = 0.1;
    // --store <path> persists the per-iteration features of the
    // instrumented run (--store-async flushes on the pool,
    // --store-durability picks when sealed blocks hit the disk).
    stop.storePath = store.path;
    stop.storeAsync = store.async;
    stop.storeDurability = store.durability;
    stop.storeMergePolicy = store.mergePolicy;
    stop.storeKeepParts = store.keepParts;
    stop.storeLive = store.live;
    // --ckpt <prefix> writes crash-safe checkpoint generations every
    // --ckpt-every iterations; --resume-auto restores the newest
    // valid one at startup (kill the run mid-flight and rerun with
    // the same flags to see it pick up where it left off).
    stop.ckptPath = ckpt.path;
    stop.ckptEvery = ckpt.every;
    stop.ckptKeep = static_cast<int>(ckpt.keep);
    stop.ckptDurability = ckpt.durability;
    stop.resumeAuto = ckpt.resumeAuto;
    // --metrics-every prints a counter heartbeat from the run loop;
    // --metrics-out / --trace-out dump the full telemetry at exit.
    stop.metricsEvery = obsCli.metricsEvery;
    const RunResult early = runBlast(config, nullptr, stop);
    if (!ckpt.path.empty()) {
        std::printf("checkpoints: %ld generations under %s\n",
                    early.checkpointsWritten, ckpt.path.c_str());
        if (early.resumed)
            std::printf("resumed from checkpoint at iteration %ld\n",
                        early.resumedFromIteration);
    }
    if (!store.path.empty()) {
        std::printf("feature store: %s (%zu bytes)\n",
                    store.path.c_str(), early.storeBytes);
    }

    std::printf("early-terminated run: %ld iterations, %.3f s "
                "(stopped %s)\n",
                early.iterations, early.seconds,
                early.stoppedEarly ? "early" : "at the end");
    std::printf("model converged at iteration %ld\n",
                early.convergedIteration);
    std::printf("extracted break-point radius: %.0f\n",
                early.featureValue);
    if (early.stoppedEarly) {
        std::printf("acceleration: %.1f%% of the runtime saved\n",
                    100.0 * (reference.seconds - early.seconds) /
                        reference.seconds);
    }
    finishObsOptions(obsCli);
    return 0;
}
