/**
 * @file
 * Custom feature extraction: the library's feature kinds beyond the
 * two headline cases — PeakValue tracking on an oscillating
 * diagnostic, plus direct use of the variable tracker and the
 * threshold extractor on user data.
 */

#include <cmath>
#include <cstdio>

#include "base/cli.hh"
#include "core/region.hh"
#include "core/threshold.hh"
#include "core/tracker.hh"

using namespace tdfe;

/** A ringing diagnostic: damped oscillation around a drift. */
struct RingDomain
{
    long step = 0;

    double
    value(long) const
    {
        const double t = static_cast<double>(step);
        return 2.0 + 0.01 * t +
               1.5 * std::exp(-t / 120.0) *
                   std::sin(2.0 * M_PI * t / 40.0);
    }
};

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const ObsCliOptions obsCli = applyObsFlags(argc, argv);

    // 1. In-situ peak tracking through the Region API.
    RingDomain sim;
    Region region("ring", &sim);
    AnalysisConfig cfg;
    cfg.provider = [](void *d, long loc) {
        return static_cast<RingDomain *>(d)->value(loc);
    };
    cfg.space = IterParam(0, 0, 1);
    cfg.time = IterParam(4, 200, 1);
    cfg.feature = FeatureKind::PeakValue;
    cfg.ar.axis = LagAxis::Time;
    cfg.ar.order = 4;
    cfg.ar.batchSize = 8;
    const std::size_t id = region.addAnalysis(std::move(cfg));

    for (sim.step = 0; sim.step <= 200; ++sim.step) {
        region.begin();
        region.end();
    }
    std::printf("latest fitted local maximum: %.3f\n",
                region.analysis(id).extractFeature());

    // 2. The same trackers, used standalone on user-held series.
    std::vector<double> series;
    for (int t = 0; t <= 200; ++t) {
        RingDomain probe;
        probe.step = t;
        series.push_back(probe.value(0));
    }
    const auto maxima = VariableTracker::localMaxima(series);
    std::printf("streaming k1/k2/k3 tracker found %zu local "
                "maxima:\n",
                maxima.size());
    for (const auto &p : maxima)
        std::printf("  step %zu: %.3f\n", p.index, p.value);

    const auto infl = VariableTracker::inflections(series);
    std::printf("%zu inflection points\n", infl.size());

    // 3. Threshold search over a decaying profile.
    ThresholdExtractor extractor(2.2, 6);
    const BreakPoint bp = extractor.find(
        [&](long l) {
            // Envelope of the ring: drift + decaying amplitude.
            return 2.0 + 1.5 * std::exp(-l / 120.0);
        },
        0, 400);
    std::printf("envelope drops below 2.2 after step %ld "
                "(%ld profile evaluations, clamped=%d)\n",
                bp.radius, bp.evaluations, bp.clamped ? 1 : 0);
    finishObsOptions(obsCli);
    return 0;
}
