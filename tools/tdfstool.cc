/**
 * @file
 * `tdfstool` — operator CLI of the feature trace store, in the
 * spirit of TrailDB's `tdb` utility:
 *
 *   tdfstool info   <store>            header/schema/block summary
 *   tdfstool verify <store>            CRC + full-decode walk
 *   tdfstool export <store> [--out f]  CSV dump (stdout default)
 *   tdfstool query  <store> [--iter a:b] [--analysis k] [--stop 0|1]
 *                   [--where col<op>v]... [--project cols]
 *                   [--agg count|min|max|mean]
 *                                      filtered scan (zone-map
 *                                      pushdown; see store/query.hh)
 *   tdfstool tail   <store> [filters] [--stall s] [--max n]
 *                                      follow a store being written
 *                                      (--store-live), streaming
 *                                      each sealed record as CSV
 *                                      (see store/live.hh)
 *   tdfstool diff   <a> <b> [--ignore cols]
 *                                      record-wise comparison
 *   tdfstool recover <damaged> <out>   salvage a damaged store into
 *                                      a clean one
 *   tdfstool ckpt-info <file.tdck>     inspect a checkpoint envelope
 *                                      (CRCs fully verified)
 *   tdfstool metrics <file.json>       validate + pretty-print a
 *                                      --metrics-out snapshot
 *   tdfstool trace <file.json>         validate a --trace-out Chrome
 *                                      trace, per-span roll-up
 *   tdfstool help                      this text, to stdout, exit 0
 *
 * Every command exits 0 on success and 1 on any mismatch or
 * malformed input, so scripts (scripts/check_build.sh runs a
 * `verify` smoke, a `query` smoke, and a truncate/recover round
 * trip) can gate on it directly; usage errors print the usage text
 * to stderr and exit 1, while an explicit `help` / `--help` / `-h`
 * prints it to stdout and exits 0, as operators expect. `recover`
 * succeeds whenever the salvage scan ran — even when it recovered
 * zero records — because for an operator, "the file held nothing
 * recoverable" is an answer, not a tool failure; the record count
 * is printed for scripts that want to gate on it.
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "obs/json.hh"
#include "store/live.hh"
#include "store/query.hh"
#include "store/reader.hh"
#include "store/writer.hh"

using tdfe::FeatureRecord;
using tdfe::FeatureStoreReader;
using tdfe::FeatureStoreWriter;
using tdfe::StoreOptions;
using tdfe::StoreSchema;

namespace
{

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: tdfstool <command> <store> [options]\n"
        "  info   <store>              print header, schema, and "
        "block index\n"
        "  verify <store>              check every block CRC and "
        "decode\n"
        "  export <store> [--out f]    dump records as CSV (stdout "
        "default)\n"
        "  query  <store> [filters]    filtered scan; non-matching "
        "blocks are\n"
        "                              skipped via the footer zone "
        "map\n"
        "         --iter a:b           iteration window [a, b) "
        "(either side\n"
        "                              may be empty for an open "
        "end)\n"
        "         --analysis k         only analysis id k\n"
        "         --stop 0|1           only records with that stop "
        "flag\n"
        "         --where col<op>v     metric predicate, e.g. "
        "mse<0.5 or\n"
        "                              wavefront>=12; repeatable "
        "(ANDed);\n"
        "                              columns: wall_time, "
        "wavefront,\n"
        "                              predicted, mse; ops: < <= > "
        ">= == !=\n"
        "                              (NaN values never match)\n"
        "         --project c,c        output only these columns\n"
        "         --agg count|min|max|mean\n"
        "                              aggregate instead of "
        "listing: count\n"
        "                              of matches, or the "
        "per-projected-column\n"
        "                              min/max/mean (NaNs "
        "excluded)\n"
        "  tail   <store> [filters]    follow a store being written "
        "(the\n"
        "                              writer publishes with "
        "--store-live),\n"
        "                              printing each sealed record "
        "as CSV;\n"
        "                              accepts the query filters "
        "and\n"
        "                              --project above, plus:\n"
        "         --stall s            exit after s seconds without "
        "progress\n"
        "                              (default 10; 0 waits "
        "forever)\n"
        "         --max n              exit after n records\n"
        "                              exits 0 when the writer "
        "finishes or\n"
        "                              is lost — the printed stream "
        "is a\n"
        "                              consistent sealed prefix "
        "either way\n"
        "  diff <a> <b> [--ignore c,c] compare two stores "
        "record-wise,\n"
        "                              skipping the named columns "
        "(e.g. wall_time)\n"
        "  recover <damaged> <out>     salvage the sealed-block "
        "prefix of a\n"
        "                              damaged store into a clean "
        "one\n"
        "  ckpt-info <file.tdck>       inspect a crash-safe "
        "checkpoint envelope\n"
        "                              (exit 1 when torn or "
        "corrupt)\n"
        "  metrics <file.json>         validate and pretty-print a "
        "--metrics-out\n"
        "                              snapshot (tdfe.metrics.v1; "
        "exit 1 when\n"
        "                              malformed)\n"
        "  trace <file.json>           validate a --trace-out "
        "Chrome trace and\n"
        "                              print a per-span roll-up "
        "(exit 1 when\n"
        "                              malformed)\n"
        "  help                        print this text and exit "
        "0\n");
}

int
usage()
{
    printUsage(stderr);
    return 1;
}

std::unique_ptr<FeatureStoreReader>
openOrComplain(const std::string &path)
{
    std::string error;
    auto reader = FeatureStoreReader::open(path, &error);
    if (!reader)
        std::fprintf(stderr, "tdfstool: %s\n", error.c_str());
    return reader;
}

int
cmdInfo(const std::string &path)
{
    const auto r = openOrComplain(path);
    if (!r)
        return 1;
    std::printf("store:        %s\n", path.c_str());
    std::printf("file bytes:   %zu\n", r->fileBytes());
    std::printf("records:      %zu\n", r->recordCount());
    std::printf("blocks:       %zu (capacity %zu records)\n",
                r->blockCount(), r->blockCapacity());
    std::printf("sorted:       %s\n",
                r->sortedByIteration() ? "yes (indexed range access)"
                                       : "no (rank-merged?)");
    std::printf("columns:      ");
    const auto &names = r->columnNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::printf("%s%s", i ? "," : "", names[i].c_str());
    std::printf("\n");
    if (r->recordCount() > 0) {
        const double bpr = static_cast<double>(r->fileBytes()) /
                           static_cast<double>(r->recordCount());
        const double raw = 8.0 * static_cast<double>(
                                     r->schema().totalColumns());
        std::printf("bytes/record: %.2f (raw columnar %.0f, "
                    "%.2fx compression)\n",
                    bpr, raw, raw / bpr);
    }
    std::printf("block index (offset, bytes, records, iter "
                "range):\n");
    for (std::size_t b = 0; b < r->blockCount(); ++b) {
        const auto &info = r->blockInfo(b);
        std::printf("  #%-4zu %10" PRIu64 " %8" PRIu64 " %6" PRIu64
                    "   [%" PRId64 ", %" PRId64 "]\n",
                    b, info.offset, info.size, info.records,
                    info.firstIter, info.lastIter);
    }
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const auto r = openOrComplain(path);
    if (!r)
        return 1;
    std::string detail;
    if (!r->verify(&detail)) {
        std::fprintf(stderr, "tdfstool: %s: %s\n", path.c_str(),
                     detail.c_str());
        return 1;
    }
    std::printf("%s: OK (%zu records in %zu blocks, all CRCs and "
                "decodes clean)\n",
                path.c_str(), r->recordCount(), r->blockCount());
    return 0;
}

int
cmdExport(const std::string &path, const std::string &out_path)
{
    const auto r = openOrComplain(path);
    if (!r)
        return 1;

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file) {
            std::fprintf(stderr, "tdfstool: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
    }
    std::ostream &out = out_path.empty()
                            ? static_cast<std::ostream &>(std::cout)
                            : file;

    const auto &names = r->columnNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        out << (i ? "," : "") << names[i];
    out << "\n";

    char buf[64];
    FeatureRecord rec;
    auto c = r->cursor();
    while (c.next(rec)) {
        out << rec.iteration << ',' << rec.analysis << ','
            << (rec.stop ? 1 : 0);
        const double fixed[] = {rec.wallTime, rec.wavefront,
                                rec.predicted, rec.mse};
        for (const double v : fixed) {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            out << ',' << buf;
        }
        for (const double v : rec.coeffs) {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            out << ',' << buf;
        }
        out << "\n";
    }
    if (!out.good()) {
        std::fprintf(stderr, "tdfstool: export write failed\n");
        return 1;
    }
    return 0;
}

/**
 * Resolve a projected column of @p rec by footer name. Integer
 * columns report @p integral so the CSV prints them without a
 * decimal point. @return false for a name the store does not have.
 */
bool
columnValue(const FeatureRecord &rec, const std::string &name,
            double &v, bool &integral)
{
    integral = true;
    if (name == "iteration") {
        v = static_cast<double>(rec.iteration);
        return true;
    }
    if (name == "analysis") {
        v = static_cast<double>(rec.analysis);
        return true;
    }
    if (name == "stop") {
        v = rec.stop ? 1.0 : 0.0;
        return true;
    }
    integral = false;
    if (name == "wall_time") {
        v = rec.wallTime;
        return true;
    }
    if (name == "wavefront") {
        v = rec.wavefront;
        return true;
    }
    if (name == "predicted") {
        v = rec.predicted;
        return true;
    }
    if (name == "mse") {
        v = rec.mse;
        return true;
    }
    if (name.rfind("coef", 0) == 0) {
        char *end = nullptr;
        const long k = std::strtol(name.c_str() + 4, &end, 10);
        if (end != name.c_str() + 4 && *end == '\0' && k >= 0 &&
            static_cast<std::size_t>(k) < rec.coeffs.size()) {
            v = rec.coeffs[static_cast<std::size_t>(k)];
            return true;
        }
    }
    return false;
}

/**
 * Try to consume argv[@p i] (advancing @p i past any value) as one
 * of the filter/projection flags `query` and `tail` share: --iter,
 * --analysis, --stop, --where, --project.
 * @return 1 when consumed, 0 when the flag is not ours, -1 on a
 *         malformed value (message already printed).
 */
int
consumeFilterArg(int argc, char **argv, int &i,
                 tdfe::EventFilter &filter, std::string &project)
{
    const std::string arg = argv[i];
    if (arg == "--iter" && i + 1 < argc) {
        const std::string spec = argv[++i];
        const std::size_t colon = spec.find(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr,
                         "tdfstool: --iter wants a:b, got '%s'\n",
                         spec.c_str());
            return -1;
        }
        const std::string lo = spec.substr(0, colon);
        const std::string hi = spec.substr(colon + 1);
        if (!lo.empty())
            filter.iterBegin = std::atoll(lo.c_str());
        if (!hi.empty())
            filter.iterEnd = std::atoll(hi.c_str());
        return 1;
    }
    if (arg == "--analysis" && i + 1 < argc) {
        filter.analysisIs(std::atoll(argv[++i]));
        return 1;
    }
    if (arg == "--stop" && i + 1 < argc) {
        filter.stopIs(std::string(argv[++i]) != "0");
        return 1;
    }
    if (arg == "--where" && i + 1 < argc) {
        tdfe::MetricPredicate pred;
        std::string error;
        if (!tdfe::parseMetricPredicate(argv[++i], pred, &error)) {
            std::fprintf(stderr, "tdfstool: %s\n", error.c_str());
            return -1;
        }
        filter.where(pred);
        return 1;
    }
    if (arg == "--project" && i + 1 < argc) {
        project = argv[++i];
        return 1;
    }
    return 0;
}

/**
 * Resolve a --project list against @p known (footer column names):
 * empty @p project selects every column. @return false (message
 * printed) on an unknown or empty selection.
 */
bool
resolveColumns(const std::vector<std::string> &known,
               const std::string &project,
               std::vector<std::string> &cols)
{
    if (project.empty()) {
        cols = known;
        return true;
    }
    std::stringstream ss(project);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        if (std::find(known.begin(), known.end(), item) ==
            known.end()) {
            std::fprintf(stderr,
                         "tdfstool: store has no column '%s'\n",
                         item.c_str());
            return false;
        }
        cols.push_back(item);
    }
    if (cols.empty()) {
        std::fprintf(stderr,
                     "tdfstool: --project named no columns\n");
        return false;
    }
    return true;
}

/** Print one CSV row of @p rec projected to @p cols (export-format
 *  values: integral columns without a decimal point, doubles
 *  round-tripping at %.17g) — shared by `query` and `tail` so a
 *  tailed stream is textually a prefix of an export/query of the
 *  same records. */
void
printProjected(const FeatureRecord &rec,
               const std::vector<std::string> &cols)
{
    char buf[64];
    for (std::size_t c = 0; c < cols.size(); ++c) {
        double v = 0.0;
        bool integral = false;
        columnValue(rec, cols[c], v, integral);
        if (integral) {
            std::printf("%s%lld", c ? "," : "",
                        static_cast<long long>(v));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            std::printf("%s%s", c ? "," : "", buf);
        }
    }
    std::printf("\n");
}

int
cmdQuery(int argc, char **argv)
{
    const std::string path = argv[2];
    tdfe::EventFilter filter;
    std::string project;
    std::string agg;
    for (int i = 3; i < argc; ++i) {
        const int took =
            consumeFilterArg(argc, argv, i, filter, project);
        if (took < 0)
            return 1;
        if (took > 0)
            continue;
        const std::string arg = argv[i];
        if (arg == "--agg" && i + 1 < argc) {
            agg = argv[++i];
        } else {
            return usage();
        }
    }
    if (!agg.empty() && agg != "count" && agg != "min" &&
        agg != "max" && agg != "mean") {
        std::fprintf(stderr,
                     "tdfstool: --agg wants count, min, max, or "
                     "mean, got '%s'\n",
                     agg.c_str());
        return 1;
    }

    const auto r = openOrComplain(path);
    if (!r)
        return 1;

    std::vector<std::string> cols;
    if (!resolveColumns(r->columnNames(), project, cols))
        return 1;

    tdfe::QueryCursor cursor(*r, filter);
    FeatureRecord rec;
    char buf[64];

    if (agg == "count") {
        std::size_t n = 0;
        while (cursor.next(rec))
            ++n;
        std::printf("%zu\n", n);
        return 0;
    }

    if (!agg.empty()) {
        // Per-projected-column streaming aggregate; NaNs are
        // excluded, matching the query engine's predicate
        // semantics. A column with no non-NaN value prints "nan".
        std::vector<double> mins(cols.size(), 0.0);
        std::vector<double> maxs(cols.size(), 0.0);
        std::vector<double> sums(cols.size(), 0.0);
        std::vector<std::size_t> counts(cols.size(), 0);
        while (cursor.next(rec)) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                double v = 0.0;
                bool integral = false;
                columnValue(rec, cols[c], v, integral);
                if (std::isnan(v))
                    continue;
                if (counts[c] == 0 || v < mins[c])
                    mins[c] = v;
                if (counts[c] == 0 || v > maxs[c])
                    maxs[c] = v;
                sums[c] += v;
                ++counts[c];
            }
        }
        for (std::size_t c = 0; c < cols.size(); ++c)
            std::printf("%s%s", c ? "," : "", cols[c].c_str());
        std::printf("\n");
        for (std::size_t c = 0; c < cols.size(); ++c) {
            double v = std::numeric_limits<double>::quiet_NaN();
            if (counts[c] > 0) {
                v = agg == "min" ? mins[c]
                    : agg == "max"
                        ? maxs[c]
                        : sums[c] /
                              static_cast<double>(counts[c]);
            }
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            std::printf("%s%s", c ? "," : "", buf);
        }
        std::printf("\n");
        return 0;
    }

    for (std::size_t c = 0; c < cols.size(); ++c)
        std::printf("%s%s", c ? "," : "", cols[c].c_str());
    std::printf("\n");
    while (cursor.next(rec))
        printProjected(rec, cols);
    return 0;
}

int
cmdTail(int argc, char **argv)
{
    const std::string path = argv[2];
    tdfe::EventFilter filter;
    std::string project;
    double stall = 10.0;
    long max_records = -1;
    for (int i = 3; i < argc; ++i) {
        const int took =
            consumeFilterArg(argc, argv, i, filter, project);
        if (took < 0)
            return 1;
        if (took > 0)
            continue;
        const std::string arg = argv[i];
        if (arg == "--stall" && i + 1 < argc) {
            stall = std::atof(argv[++i]);
        } else if (arg == "--max" && i + 1 < argc) {
            max_records = std::atoll(argv[++i]);
        } else {
            return usage();
        }
    }

    tdfe::LiveViewOptions options;
    options.stallDeadlineSeconds = stall;
    tdfe::LiveStoreReader live(path, options);
    tdfe::TailCursor tail(live, filter);

    // First advance = attach: the column set is only known once a
    // manifest (or footer) has been adopted.
    if (!live.attached())
        live.waitForAdvance();
    if (!live.attached()) {
        std::fprintf(stderr,
                     "tdfstool: %s: no live store appeared within "
                     "the stall deadline (%s)\n",
                     path.c_str(),
                     tdfe::liveStateName(live.state()));
        return 1;
    }

    std::vector<std::string> cols;
    if (!resolveColumns(live.view().reader().columnNames(), project,
                        cols))
        return 1;
    for (std::size_t c = 0; c < cols.size(); ++c)
        std::printf("%s%s", c ? "," : "", cols[c].c_str());
    std::printf("\n");

    FeatureRecord rec;
    long printed = 0;
    for (;;) {
        if (tail.next(rec)) {
            printProjected(rec, cols);
            // Line-buffered consumers (dashboards, the check_build
            // prefix gate) see each record as it seals.
            std::fflush(stdout);
            if (max_records >= 0 && ++printed >= max_records)
                break;
            continue;
        }
        if (tail.done())
            break;
        // Drained for now: block until the writer publishes again,
        // finishes, or the stall deadline degrades us to a static
        // view — the loop then drains that and done() ends it.
        live.waitForAdvance();
    }

    const tdfe::LiveState end_state = live.state();
    std::fprintf(stderr,
                 "tdfstool: tail of %s ended (%s, %zu records "
                 "delivered)\n",
                 path.c_str(), tdfe::liveStateName(end_state),
                 tail.recordsDelivered());
    // Both a finished writer and a lost one end the tail cleanly —
    // the records delivered are a consistent sealed prefix either
    // way. Only failing to ever see a store is an error (above).
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b,
        const std::string &ignore_list)
{
    const auto a = openOrComplain(path_a);
    const auto b = openOrComplain(path_b);
    if (!a || !b)
        return 1;

    std::set<std::string> ignored;
    {
        std::stringstream ss(ignore_list);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                ignored.insert(item);
    }
    const auto skip = [&ignored](const std::string &col) {
        return ignored.count(col) > 0;
    };

    if (a->schema() != b->schema()) {
        std::fprintf(stderr,
                     "schemas differ: %zu vs %zu coefficient "
                     "columns\n",
                     a->schema().coeffCount, b->schema().coeffCount);
        return 1;
    }
    if (a->recordCount() != b->recordCount()) {
        std::fprintf(stderr, "record counts differ: %zu vs %zu\n",
                     a->recordCount(), b->recordCount());
        return 1;
    }

    constexpr int maxReported = 10;
    int mismatches = 0;
    auto ca = a->cursor();
    auto cb = b->cursor();
    FeatureRecord ra, rb;
    std::size_t row = 0;
    auto report = [&](const std::string &col, double va, double vb) {
        if (++mismatches <= maxReported) {
            std::fprintf(stderr,
                         "record %zu: %s differs (%.17g vs "
                         "%.17g)\n",
                         row, col.c_str(), va, vb);
        }
    };
    while (ca.next(ra)) {
        if (!cb.next(rb))
            break;
        if (!skip("iteration") && ra.iteration != rb.iteration)
            report("iteration",
                   static_cast<double>(ra.iteration),
                   static_cast<double>(rb.iteration));
        if (!skip("analysis") && ra.analysis != rb.analysis)
            report("analysis", static_cast<double>(ra.analysis),
                   static_cast<double>(rb.analysis));
        if (!skip("stop") && ra.stop != rb.stop)
            report("stop", ra.stop, rb.stop);
        // Bitwise comparison through memcmp: NaNs compare equal to
        // themselves and +0.0 differs from -0.0, exactly what a
        // byte-level store diff should say.
        auto diff_bits = [](double x, double y) {
            return std::memcmp(&x, &y, sizeof(double)) != 0;
        };
        if (!skip("wall_time") && diff_bits(ra.wallTime, rb.wallTime))
            report("wall_time", ra.wallTime, rb.wallTime);
        if (!skip("wavefront") &&
            diff_bits(ra.wavefront, rb.wavefront))
            report("wavefront", ra.wavefront, rb.wavefront);
        if (!skip("predicted") &&
            diff_bits(ra.predicted, rb.predicted))
            report("predicted", ra.predicted, rb.predicted);
        if (!skip("mse") && diff_bits(ra.mse, rb.mse))
            report("mse", ra.mse, rb.mse);
        for (std::size_t k = 0; k < ra.coeffs.size(); ++k) {
            const std::string col = "coef" + std::to_string(k);
            if (!skip(col) && diff_bits(ra.coeffs[k], rb.coeffs[k]))
                report(col, ra.coeffs[k], rb.coeffs[k]);
        }
        ++row;
    }
    if (mismatches > maxReported) {
        std::fprintf(stderr, "... and %d more mismatches\n",
                     mismatches - maxReported);
    }
    if (mismatches == 0) {
        std::printf("stores match (%zu records%s)\n",
                    a->recordCount(),
                    ignored.empty() ? ""
                                    : ", ignored columns excluded");
        return 0;
    }
    return 1;
}

int
cmdRecover(const std::string &src, const std::string &dst)
{
    std::string error;
    const auto r = FeatureStoreReader::salvage(src, &error);
    if (!r) {
        std::fprintf(stderr, "tdfstool: %s\n", error.c_str());
        return 1;
    }

    // Re-encode at the source's block capacity so a store that was
    // merely truncated round-trips byte-identically to the honest
    // prefix (same blocks, same codecs, same footer).
    StoreOptions options;
    options.blockCapacity = r->blockCapacity();
    FeatureStoreWriter writer(dst, r->schema(), options);
    FeatureRecord rec;
    auto c = r->cursor();
    while (c.next(rec))
        writer.append(rec);
    const std::size_t recovered = writer.recordCount();
    const std::size_t bytes = writer.finish();
    if (!writer.ok()) {
        std::fprintf(stderr, "tdfstool: cannot write %s: %s\n",
                     dst.c_str(), writer.status().message.c_str());
        return 1;
    }

    std::printf("%s: recovered %zu records in %zu blocks "
                "(%zu damaged/trailing bytes dropped) -> %s "
                "(%zu bytes)\n",
                src.c_str(), recovered, r->blockCount(),
                r->droppedTailBytes(), dst.c_str(), bytes);
    return 0;
}

int
cmdCkptInfo(const std::string &path)
{
    const tdfe::ckpt::EnvelopeInfo info =
        tdfe::ckpt::inspectCheckpointFile(path);
    std::printf("checkpoint:    %s\n", path.c_str());
    std::printf("file bytes:    %" PRIu64 "\n", info.fileBytes);
    if (!info.valid) {
        std::printf("valid:         no\n");
        std::fprintf(stderr, "tdfstool: %s: %s\n", path.c_str(),
                     info.error.c_str());
        return 1;
    }
    std::printf("version:       %" PRIu32 "\n", info.version);
    std::printf("iteration:     %" PRIu64 "\n", info.iteration);
    std::printf("payload bytes: %" PRIu64 "\n", info.payloadBytes);
    std::printf("payload crc32: %08" PRIx32 "\n", info.payloadCrc);
    std::printf("valid:         yes (header and payload CRCs "
                "verified)\n");
    return 0;
}

int
cmdMetrics(const std::string &path)
{
    tdfe::obs::JsonValue doc;
    std::string error;
    if (!tdfe::obs::parseJsonFile(path, doc, error)) {
        std::fprintf(stderr, "tdfstool: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    if (!doc.isObject() ||
        doc.stringAt("schema") != "tdfe.metrics.v1") {
        std::fprintf(stderr,
                     "tdfstool: %s: not a tdfe.metrics.v1 "
                     "snapshot (schema \"%s\")\n",
                     path.c_str(), doc.stringAt("schema").c_str());
        return 1;
    }
    const tdfe::obs::JsonValue *counters = doc.find("counters");
    const tdfe::obs::JsonValue *gauges = doc.find("gauges");
    const tdfe::obs::JsonValue *hists = doc.find("histograms");
    if (!counters || !counters->isObject() || !gauges ||
        !gauges->isObject() || !hists || !hists->isObject()) {
        std::fprintf(stderr,
                     "tdfstool: %s: missing counters/gauges/"
                     "histograms sections\n",
                     path.c_str());
        return 1;
    }

    // Longest name first so the value column lines up.
    std::size_t width = 12;
    for (const auto &m : counters->members)
        width = std::max(width, m.first.size());
    for (const auto &m : gauges->members)
        width = std::max(width, m.first.size());
    for (const auto &m : hists->members)
        width = std::max(width, m.first.size());
    const int w = static_cast<int>(width);

    std::printf("metrics:    %s\n", path.c_str());
    std::printf("counters:   %zu\n", counters->members.size());
    for (const auto &m : counters->members) {
        if (!m.second.isNumber()) {
            std::fprintf(stderr,
                         "tdfstool: %s: counter %s is not a "
                         "number\n",
                         path.c_str(), m.first.c_str());
            return 1;
        }
        std::printf("  %-*s %15.0f\n", w, m.first.c_str(),
                    m.second.number);
    }
    std::printf("gauges:     %zu\n", gauges->members.size());
    for (const auto &m : gauges->members)
        std::printf("  %-*s %15g\n", w, m.first.c_str(),
                    m.second.number);
    std::printf("histograms: %zu\n", hists->members.size());
    for (const auto &m : hists->members) {
        const tdfe::obs::JsonValue &h = m.second;
        if (!h.isObject() || !h.find("count") || !h.find("sum")) {
            std::fprintf(stderr,
                         "tdfstool: %s: histogram %s is "
                         "malformed\n",
                         path.c_str(), m.first.c_str());
            return 1;
        }
        const double count = h.numberAt("count");
        std::printf("  %-*s %15.0f", w, m.first.c_str(), count);
        if (count > 0.0) {
            std::printf("  sum %.6g  min %.3g  max %.3g  mean "
                        "%.3g",
                        h.numberAt("sum"), h.numberAt("min"),
                        h.numberAt("max"),
                        h.numberAt("sum") / count);
        }
        std::printf("\n");
    }
    return 0;
}

int
cmdTrace(const std::string &path)
{
    tdfe::obs::JsonValue doc;
    std::string error;
    if (!tdfe::obs::parseJsonFile(path, doc, error)) {
        std::fprintf(stderr, "tdfstool: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    if (!doc.isObject() ||
        doc.stringAt("schema") != "tdfe.trace.v1") {
        std::fprintf(stderr,
                     "tdfstool: %s: not a tdfe.trace.v1 file "
                     "(schema \"%s\")\n",
                     path.c_str(), doc.stringAt("schema").c_str());
        return 1;
    }
    const tdfe::obs::JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "tdfstool: %s: missing traceEvents array\n",
                     path.c_str());
        return 1;
    }

    // Per-span-name roll-up: count and total duration, plus the
    // thread set — enough to eyeball the overlap story without
    // opening Perfetto.
    struct SpanStat
    {
        std::size_t count = 0;
        double durUs = 0.0;
    };
    std::map<std::string, SpanStat> spans;
    std::set<double> tids;
    std::size_t instants = 0;
    for (const tdfe::obs::JsonValue &e : events->items) {
        if (!e.isObject() || e.stringAt("name").empty()) {
            std::fprintf(stderr,
                         "tdfstool: %s: malformed trace event\n",
                         path.c_str());
            return 1;
        }
        const std::string ph = e.stringAt("ph");
        if (ph != "X" && ph != "i") {
            std::fprintf(stderr,
                         "tdfstool: %s: unexpected event phase "
                         "\"%s\"\n",
                         path.c_str(), ph.c_str());
            return 1;
        }
        tids.insert(e.numberAt("tid"));
        if (ph == "i") {
            ++instants;
            continue;
        }
        SpanStat &s = spans[e.stringAt("name")];
        ++s.count;
        s.durUs += e.numberAt("dur");
    }

    std::size_t width = 12;
    for (const auto &m : spans)
        width = std::max(width, m.first.size());
    std::printf("trace:    %s\n", path.c_str());
    std::printf("events:   %zu (%zu spans, %zu instants) on %zu "
                "threads\n",
                events->items.size(),
                events->items.size() - instants, instants,
                tids.size());
    for (const auto &m : spans)
        std::printf("  %-*s %8zu x  %12.1f us total\n",
                    static_cast<int>(width), m.first.c_str(),
                    m.second.count, m.second.durUs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        printUsage(stdout);
        return 0;
    }
    if (argc < 3)
        return usage();

    if (cmd == "info")
        return cmdInfo(argv[2]);
    if (cmd == "verify")
        return cmdVerify(argv[2]);
    if (cmd == "export") {
        std::string out;
        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--out" && i + 1 < argc)
                out = argv[++i];
            else
                return usage();
        }
        return cmdExport(argv[2], out);
    }
    if (cmd == "query")
        return cmdQuery(argc, argv);
    if (cmd == "tail")
        return cmdTail(argc, argv);
    if (cmd == "diff") {
        if (argc < 4)
            return usage();
        std::string ignore;
        for (int i = 4; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--ignore" && i + 1 < argc)
                ignore = argv[++i];
            else
                return usage();
        }
        return cmdDiff(argv[2], argv[3], ignore);
    }
    if (cmd == "recover") {
        if (argc != 4)
            return usage();
        return cmdRecover(argv[2], argv[3]);
    }
    if (cmd == "ckpt-info") {
        if (argc != 3)
            return usage();
        return cmdCkptInfo(argv[2]);
    }
    if (cmd == "metrics") {
        if (argc != 3)
            return usage();
        return cmdMetrics(argv[2]);
    }
    if (cmd == "trace") {
        if (argc != 3)
            return usage();
        return cmdTrace(argv[2]);
    }
    return usage();
}
